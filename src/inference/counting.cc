#include "inference/counting.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <unordered_map>

#include "common/logging.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define TENDS_COUNTING_AVX512 1
#include <immintrin.h>
#endif

namespace tends::inference {

namespace {

/// Dense-table cutoff shared by every kernel: parent sets up to this size
/// tally into flat arrays (<= 16384 entries); larger ones hash.
constexpr uint32_t kDenseMaxParents = 14;

/// Above this size the packed kernel switches from popcount-per-combination
/// (the 2^|W| combination masks are built by binary recursion, 2 AND ops
/// per mask, so a word costs O(2^|W|) regardless of |W|) to per-process
/// code assembly (O(beta) tally). At 64 processes per word the recursion
/// stops paying once 2^|W| approaches the word width.
constexpr uint32_t kPopcountMaxParents = 6;

/// Emits dense tallies in ascending combo order, skipping empty slots.
void EmitDense(const std::vector<uint32_t>& dense0,
               const std::vector<uint32_t>& dense1, JointCounts& counts) {
  for (uint32_t j = 0; j < dense0.size(); ++j) {
    if (dense0[j] + dense1[j] == 0) continue;
    counts.combo.push_back(j);
    counts.child0_count.push_back(dense0[j]);
    counts.child1_count.push_back(dense1[j]);
  }
}

/// Emits hashed tallies in ascending combo order (the canonical emission
/// order every kernel shares, so JointCounts compare bit-identical).
void EmitSparse(
    const std::unordered_map<uint32_t, std::pair<uint32_t, uint32_t>>& sparse,
    JointCounts& counts) {
  std::vector<uint32_t> combos;
  combos.reserve(sparse.size());
  for (const auto& [combo, pair] : sparse) combos.push_back(combo);
  std::sort(combos.begin(), combos.end());
  counts.combo.reserve(combos.size());
  counts.child0_count.reserve(combos.size());
  counts.child1_count.reserve(combos.size());
  for (uint32_t combo : combos) {
    const auto& pair = sparse.at(combo);
    counts.combo.push_back(combo);
    counts.child0_count.push_back(pair.first);
    counts.child1_count.push_back(pair.second);
  }
}

#if TENDS_COUNTING_AVX512

/// Compile the vector kernel for AVX-512 regardless of the baseline -march;
/// it only runs after the cpuid check below. The counts are plain integer
/// popcounts, so vector and scalar paths agree bit-for-bit.
#define TENDS_AVX512_TARGET __attribute__((target("avx512f,avx512bw")))

// GCC 12's avx512fintrin.h trips -W(maybe-)uninitialized on the
// _mm512_undefined_epi32 scratch inside set1/loadu when inlined here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

/// Per-byte popcount of a 512-bit vector folded into eight 64-bit lane
/// sums (nibble shuffle against a 16-entry LUT, then SAD against zero).
TENDS_AVX512_TARGET inline __m512i PopcountLanes512(__m512i v) {
  const __m512i lut = _mm512_set_epi8(
      4, 3, 3, 2, 3, 2, 2, 1, 3, 2, 2, 1, 2, 1, 1, 0,
      4, 3, 3, 2, 3, 2, 2, 1, 3, 2, 2, 1, 2, 1, 1, 0,
      4, 3, 3, 2, 3, 2, 2, 1, 3, 2, 2, 1, 2, 1, 1, 0,
      4, 3, 3, 2, 3, 2, 2, 1, 3, 2, 2, 1, 2, 1, 1, 0);
  const __m512i low_nibble = _mm512_set1_epi8(0x0f);
  const __m512i lo = _mm512_and_si512(v, low_nibble);
  const __m512i hi = _mm512_and_si512(_mm512_srli_epi64(v, 4), low_nibble);
  const __m512i bytes = _mm512_add_epi8(_mm512_shuffle_epi8(lut, lo),
                                        _mm512_shuffle_epi8(lut, hi));
  return _mm512_sad_epu8(bytes, _mm512_setzero_si512());
}

/// Tallies `blocks` blocks of 8 whole words (512 processes each) into
/// per-combination child1 / total counts. Same recursion as the scalar
/// popcount path, eight words at a time; every process in the range is
/// valid (the caller routes the padded tail through the scalar loop).
TENDS_AVX512_TARGET void TallyBlocksAvx512(
    const uint64_t* const* cols, uint32_t s, const uint64_t* child_col,
    uint32_t blocks, uint64_t* child1, uint64_t* total) {
  const uint32_t size = 1u << s;
  __m512i masks[uint32_t{1} << kPopcountMaxParents];
  __m512i acc1[uint32_t{1} << kPopcountMaxParents];
  __m512i acc_total[uint32_t{1} << kPopcountMaxParents];
  for (uint32_t j = 0; j < size; ++j) {
    acc1[j] = _mm512_setzero_si512();
    acc_total[j] = _mm512_setzero_si512();
  }
  for (uint32_t block = 0; block < blocks; ++block) {
    const uint32_t base = block * 8;
    masks[0] = _mm512_set1_epi64(-1);
    for (uint32_t b = 0; b < s; ++b) {
      const __m512i col = _mm512_loadu_si512(cols[b] + base);
      const uint32_t half = 1u << b;
      for (uint32_t j = 0; j < half; ++j) {
        const __m512i prefix = masks[j];
        masks[half | j] = _mm512_and_si512(prefix, col);
        masks[j] = _mm512_andnot_si512(col, prefix);
      }
    }
    const __m512i child = _mm512_loadu_si512(child_col + base);
    for (uint32_t j = 0; j < size; ++j) {
      const __m512i mask = masks[j];
      acc_total[j] = _mm512_add_epi64(acc_total[j], PopcountLanes512(mask));
      acc1[j] = _mm512_add_epi64(
          acc1[j], PopcountLanes512(_mm512_and_si512(mask, child)));
    }
  }
  for (uint32_t j = 0; j < size; ++j) {
    child1[j] = static_cast<uint64_t>(_mm512_reduce_add_epi64(acc1[j]));
    total[j] = static_cast<uint64_t>(_mm512_reduce_add_epi64(acc_total[j]));
  }
}

#pragma GCC diagnostic pop

bool HasAvx512() {
  static const bool has = __builtin_cpu_supports("avx512f") &&
                          __builtin_cpu_supports("avx512bw");
  return has;
}

#endif  // TENDS_COUNTING_AVX512

}  // namespace

JointCounts CountJoint(const diffusion::StatusMatrix& statuses,
                       graph::NodeId child,
                       const std::vector<graph::NodeId>& parents) {
  const uint32_t s = static_cast<uint32_t>(parents.size());
  TENDS_CHECK(s <= kMaxCountableParents) << "parent set too large: " << s;
  JointCounts counts;
  counts.num_possible = uint64_t{1} << s;
  const uint32_t beta = statuses.num_processes();

  if (s <= kDenseMaxParents) {
    const uint32_t size = 1u << s;
    std::vector<uint32_t> dense0(size, 0), dense1(size, 0);
    for (uint32_t p = 0; p < beta; ++p) {
      const uint8_t* row = statuses.Row(p);
      uint32_t combo = 0;
      for (uint32_t b = 0; b < s; ++b) {
        combo |= static_cast<uint32_t>(row[parents[b]] & 1) << b;
      }
      if (row[child]) {
        ++dense1[combo];
      } else {
        ++dense0[combo];
      }
    }
    EmitDense(dense0, dense1, counts);
  } else {
    std::unordered_map<uint32_t, std::pair<uint32_t, uint32_t>> sparse;
    sparse.reserve(beta);
    for (uint32_t p = 0; p < beta; ++p) {
      const uint8_t* row = statuses.Row(p);
      uint32_t combo = 0;
      for (uint32_t b = 0; b < s; ++b) {
        combo |= static_cast<uint32_t>(row[parents[b]] & 1) << b;
      }
      auto& entry = sparse[combo];
      if (row[child]) {
        ++entry.second;
      } else {
        ++entry.first;
      }
    }
    EmitSparse(sparse, counts);
  }
  counts.num_unobserved = counts.num_possible - counts.num_observed();
  return counts;
}

PairCounts CountPair(const diffusion::StatusMatrix& statuses,
                     graph::NodeId i, graph::NodeId j) {
  PairCounts counts;
  for (uint32_t p = 0; p < statuses.num_processes(); ++p) {
    const uint8_t* row = statuses.Row(p);
    uint8_t a = row[i] & 1;
    uint8_t b = row[j] & 1;
    if (a) {
      if (b) {
        ++counts.c11;
      } else {
        ++counts.c10;
      }
    } else {
      if (b) {
        ++counts.c01;
      } else {
        ++counts.c00;
      }
    }
  }
  return counts;
}

PackedStatuses::PackedStatuses(const diffusion::StatusMatrix& statuses)
    : num_nodes_(statuses.num_nodes()),
      num_processes_(statuses.num_processes()),
      words_per_node_((statuses.num_processes() + 63) / 64) {
  words_.assign(static_cast<size_t>(num_nodes_) * words_per_node_, 0);
  for (uint32_t p = 0; p < num_processes_; ++p) {
    const uint8_t* row = statuses.Row(p);
    const uint32_t word = p >> 6;
    const uint64_t bit = uint64_t{1} << (p & 63);
    for (uint32_t v = 0; v < num_nodes_; ++v) {
      if (row[v]) {
        words_[static_cast<size_t>(v) * words_per_node_ + word] |= bit;
      }
    }
  }
}

PackedStatuses::PackedStatuses(uint32_t num_processes, uint32_t num_nodes)
    : num_nodes_(num_nodes),
      num_processes_(num_processes),
      words_per_node_((num_processes + 63) / 64) {
  words_.assign(static_cast<size_t>(num_nodes_) * words_per_node_, 0);
}

void PackedStatuses::Append(const PackedStatuses& chunk) {
  TENDS_CHECK(chunk.num_nodes_ == num_nodes_)
      << "appended chunk covers " << chunk.num_nodes_
      << " nodes, packed columns cover " << num_nodes_;
  const uint32_t new_processes = num_processes_ + chunk.num_processes_;
  const uint32_t new_words_per_node = (new_processes + 63) / 64;
  // The first appended process lands at bit `shift` of word `base_word`;
  // chunk word w therefore contributes its low bits to word base_word + w
  // and (when shift > 0) its high bits to word base_word + w + 1. Chunk pad
  // bits are zero by invariant, so the splice never smears garbage into the
  // new pad region.
  const uint32_t base_word = num_processes_ >> 6;
  const uint32_t shift = num_processes_ & 63;
  std::vector<uint64_t> merged(
      static_cast<size_t>(num_nodes_) * new_words_per_node, 0);
  for (uint32_t v = 0; v < num_nodes_; ++v) {
    uint64_t* out = merged.data() + static_cast<size_t>(v) * new_words_per_node;
    const uint64_t* old_column = Column(v);
    for (uint32_t w = 0; w < words_per_node_; ++w) out[w] = old_column[w];
    const uint64_t* chunk_column = chunk.Column(v);
    for (uint32_t w = 0; w < chunk.words_per_node_; ++w) {
      const uint64_t bits = chunk_column[w];
      out[base_word + w] |= bits << shift;
      if (shift != 0 && base_word + w + 1 < new_words_per_node) {
        out[base_word + w + 1] |= bits >> (64 - shift);
      }
    }
  }
  words_ = std::move(merged);
  num_processes_ = new_processes;
  words_per_node_ = new_words_per_node;
}

void PackedStatuses::Append(const diffusion::StatusMatrix& chunk) {
  Append(PackedStatuses(chunk));
}

uint64_t PackedStatuses::PadMask(uint32_t w) const {
  if (w + 1 < words_per_node_) return ~uint64_t{0};
  const uint32_t valid = num_processes_ - 64 * (words_per_node_ - 1);
  return valid == 64 ? ~uint64_t{0} : (uint64_t{1} << valid) - 1;
}

PairCounts PackedStatuses::CountPair(graph::NodeId i, graph::NodeId j) const {
  const uint64_t* a = Column(i);
  const uint64_t* b = Column(j);
  uint32_t c11 = 0, c10 = 0, c01 = 0;
  for (uint32_t w = 0; w < words_per_node_; ++w) {
    c11 += static_cast<uint32_t>(std::popcount(a[w] & b[w]));
    c10 += static_cast<uint32_t>(std::popcount(a[w] & ~b[w]));
    c01 += static_cast<uint32_t>(std::popcount(~a[w] & b[w]));
  }
  // ~a & ~b would count padding bits beyond num_processes_; derive c00.
  PairCounts counts;
  counts.c11 = c11;
  counts.c10 = c10;
  counts.c01 = c01;
  counts.c00 = num_processes_ - c11 - c10 - c01;
  return counts;
}

uint32_t PackedStatuses::InfectedCount(graph::NodeId v) const {
  const uint64_t* a = Column(v);
  uint32_t count = 0;
  for (uint32_t w = 0; w < words_per_node_; ++w) {
    count += static_cast<uint32_t>(std::popcount(a[w]));
  }
  return count;
}

std::vector<uint32_t> PackedStatuses::InfectedCounts() const {
  std::vector<uint32_t> counts(num_nodes_);
  for (uint32_t v = 0; v < num_nodes_; ++v) counts[v] = InfectedCount(v);
  return counts;
}

JointCounts PackedStatuses::CountJoint(
    graph::NodeId child, const std::vector<graph::NodeId>& parents) const {
  const uint32_t s = static_cast<uint32_t>(parents.size());
  TENDS_CHECK(s <= kMaxCountableParents) << "parent set too large: " << s;
  JointCounts counts;
  counts.num_possible = uint64_t{1} << s;

  if (s <= kPopcountMaxParents) {
    // Popcount path: per word, partition the 64 processes into the 2^s
    // combination masks by binary recursion — level b splits every mask on
    // parent b's column, so mask j ends up holding exactly the processes
    // whose parent statuses spell j. Two ANDs per mask (not |W|), then one
    // popcount pair per mask. ~64 processes/instruction scalar; the
    // AVX-512 block kernel runs the same recursion 8 words at a time.
    const uint32_t size = 1u << s;
    constexpr uint32_t kMaxSize = uint32_t{1} << kPopcountMaxParents;
    uint64_t tally1[kMaxSize] = {};
    uint64_t tally_total[kMaxSize] = {};
    const uint64_t* child_col = Column(child);
    const uint64_t* cols[kPopcountMaxParents] = {};
    for (uint32_t b = 0; b < s; ++b) cols[b] = Column(parents[b]);

    // Whole 512-process blocks go through the vector kernel (no padding
    // bits inside them); the remainder words fall through to the scalar
    // loop, which applies the pad mask on the final word.
    uint32_t first_word = 0;
#if TENDS_COUNTING_AVX512
    const uint32_t blocks = HasAvx512() ? num_processes_ / 512 : 0;
    if (blocks > 0) {
      TallyBlocksAvx512(cols, s, child_col, blocks, tally1, tally_total);
      first_word = blocks * 8;
    }
#endif
    uint64_t masks[kMaxSize];
    for (uint32_t w = first_word; w < words_per_node_; ++w) {
      const uint64_t child_word = child_col[w];
      masks[0] = PadMask(w);
      for (uint32_t b = 0; b < s; ++b) {
        const uint64_t col = cols[b][w];
        const uint32_t half = 1u << b;
        for (uint32_t j = 0; j < half; ++j) {
          masks[half | j] = masks[j] & col;  // parent b infected: bit b set
          masks[j] &= ~col;
        }
      }
      // Branchless tally: popcounting an empty mask is cheaper than a
      // data-dependent skip (the masks are mostly non-empty for small s
      // and the mispredictions would dominate).
      for (uint32_t j = 0; j < size; ++j) {
        const uint64_t mask = masks[j];
        tally1[j] += static_cast<uint64_t>(std::popcount(mask & child_word));
        tally_total[j] += static_cast<uint64_t>(std::popcount(mask));
      }
    }
    counts.combo.reserve(size);
    counts.child0_count.reserve(size);
    counts.child1_count.reserve(size);
    for (uint32_t j = 0; j < size; ++j) {
      if (tally_total[j] == 0) continue;
      counts.combo.push_back(j);
      counts.child0_count.push_back(
          static_cast<uint32_t>(tally_total[j] - tally1[j]));
      counts.child1_count.push_back(static_cast<uint32_t>(tally1[j]));
    }
  } else {
    // Code path: scatter each parent column's set bits into per-process
    // combination codes (cost proportional to infections, not processes),
    // then tally codes against the child column in one pass.
    std::vector<uint32_t> codes(num_processes_, 0);
    for (uint32_t b = 0; b < s; ++b) {
      const uint64_t* col = Column(parents[b]);
      const uint32_t bit = 1u << b;
      for (uint32_t w = 0; w < words_per_node_; ++w) {
        uint64_t word = col[w];
        while (word != 0) {
          codes[w * 64 + std::countr_zero(word)] |= bit;
          word &= word - 1;
        }
      }
    }
    const uint64_t* child_col = Column(child);
    if (s <= kDenseMaxParents) {
      const uint32_t size = 1u << s;
      std::vector<uint32_t> dense0(size, 0), dense1(size, 0);
      for (uint32_t p = 0; p < num_processes_; ++p) {
        if ((child_col[p >> 6] >> (p & 63)) & 1) {
          ++dense1[codes[p]];
        } else {
          ++dense0[codes[p]];
        }
      }
      EmitDense(dense0, dense1, counts);
    } else {
      std::unordered_map<uint32_t, std::pair<uint32_t, uint32_t>> sparse;
      sparse.reserve(num_processes_);
      for (uint32_t p = 0; p < num_processes_; ++p) {
        auto& entry = sparse[codes[p]];
        if ((child_col[p >> 6] >> (p & 63)) & 1) {
          ++entry.second;
        } else {
          ++entry.first;
        }
      }
      EmitSparse(sparse, counts);
    }
  }
  counts.num_unobserved = counts.num_possible - counts.num_observed();
  return counts;
}

InvertedStatusIndex::InvertedStatusIndex(const PackedStatuses& packed)
    : num_processes_(packed.num_processes()) {
  // Counting pass, then CSR fill: O(total infections) bit iteration over
  // the packed columns, visiting nodes in ascending order so every process
  // list comes out sorted without a sort.
  offsets_.assign(static_cast<size_t>(num_processes_) + 1, 0);
  const uint32_t n = packed.num_nodes();
  for (uint32_t v = 0; v < n; ++v) {
    const uint64_t* col = packed.Column(v);
    for (uint32_t w = 0; w < packed.words_per_node(); ++w) {
      uint64_t word = col[w];
      while (word != 0) {
        ++offsets_[w * 64 + std::countr_zero(word) + 1];
        word &= word - 1;
      }
    }
  }
  for (uint32_t p = 0; p < num_processes_; ++p) offsets_[p + 1] += offsets_[p];
  nodes_.resize(offsets_[num_processes_]);
  std::vector<uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (uint32_t v = 0; v < n; ++v) {
    const uint64_t* col = packed.Column(v);
    for (uint32_t w = 0; w < packed.words_per_node(); ++w) {
      uint64_t word = col[w];
      while (word != 0) {
        nodes_[cursor[w * 64 + std::countr_zero(word)]++] = v;
        word &= word - 1;
      }
    }
  }
}

IncrementalJointCounter::IncrementalJointCounter(const PackedStatuses& packed,
                                                 graph::NodeId child)
    : packed_(packed), child_(child) {
  codes_.assign(packed_.num_processes(), 0);
  child_bits_.resize(packed_.num_processes());
  const uint64_t* child_col = packed_.Column(child_);
  for (uint32_t p = 0; p < packed_.num_processes(); ++p) {
    child_bits_[p] =
        static_cast<uint8_t>((child_col[p >> 6] >> (p & 63)) & 1);
  }
}

void IncrementalJointCounter::SetBase(const std::vector<graph::NodeId>& base) {
  TENDS_CHECK(base.size() <= kMaxCountableParents)
      << "base parent set too large: " << base.size();
  TENDS_CHECK(std::is_sorted(base.begin(), base.end()))
      << "base parent set must be sorted";
  base_ = base;
  ++rebuilds_;
  std::fill(codes_.begin(), codes_.end(), 0u);
  for (uint32_t b = 0; b < base_.size(); ++b) {
    const uint64_t* col = packed_.Column(base_[b]);
    const uint32_t bit = 1u << b;
    for (uint32_t w = 0; w < packed_.words_per_node(); ++w) {
      uint64_t word = col[w];
      while (word != 0) {
        codes_[w * 64 + std::countr_zero(word)] |= bit;
        word &= word - 1;
      }
    }
  }
}

JointCounts IncrementalJointCounter::Count(
    const std::vector<graph::NodeId>& extra) const {
  // Internal bit order: base_[0..k) on bits 0..k, then the novel members
  // of `extra` (in arrival order) on the bits above. The canonical output
  // encoding orders bits by the sorted union instead, so internal combos
  // are remapped through `perm` before emission.
  std::vector<graph::NodeId> fresh;
  fresh.reserve(extra.size());
  for (graph::NodeId v : extra) {
    if (!std::binary_search(base_.begin(), base_.end(), v) &&
        std::find(fresh.begin(), fresh.end(), v) == fresh.end()) {
      fresh.push_back(v);
    }
  }
  const uint32_t k = static_cast<uint32_t>(base_.size());
  const uint32_t m = k + static_cast<uint32_t>(fresh.size());
  TENDS_CHECK(m <= kMaxCountableParents) << "parent set too large: " << m;

  // Small unions are cheaper through the recursive popcount path than
  // through the cached codes (the tally alone costs O(beta) scalar ops);
  // the sorted union already is the canonical bit encoding, so the result
  // is bit-identical either way. The cache pays off above the cutoff.
  if (m <= kPopcountMaxParents) {
    std::vector<graph::NodeId> merged = base_;
    for (graph::NodeId v : fresh) {
      merged.insert(std::lower_bound(merged.begin(), merged.end(), v), v);
    }
    return packed_.CountJoint(child_, merged);
  }

  // OR each fresh member's packed column into a scratch copy of the cached
  // base codes (the cache itself stays valid for the next call).
  const std::vector<uint32_t>* codes = &codes_;
  if (!fresh.empty()) {
    scratch_codes_ = codes_;
    for (uint32_t t = 0; t < fresh.size(); ++t) {
      const uint64_t* col = packed_.Column(fresh[t]);
      const uint32_t bit = 1u << (k + t);
      for (uint32_t w = 0; w < packed_.words_per_node(); ++w) {
        uint64_t word = col[w];
        while (word != 0) {
          scratch_codes_[w * 64 + std::countr_zero(word)] |= bit;
          word &= word - 1;
        }
      }
    }
    codes = &scratch_codes_;
  }

  // Sorted union and the internal-bit -> canonical-bit permutation.
  std::vector<graph::NodeId> merged = base_;
  for (graph::NodeId v : fresh) {
    merged.insert(std::lower_bound(merged.begin(), merged.end(), v), v);
  }
  uint32_t perm[kMaxCountableParents] = {};
  bool identity = true;
  for (uint32_t b = 0; b < m; ++b) {
    const graph::NodeId v = b < k ? base_[b] : fresh[b - k];
    perm[b] = static_cast<uint32_t>(
        std::lower_bound(merged.begin(), merged.end(), v) - merged.begin());
    identity = identity && perm[b] == b;
  }

  JointCounts counts;
  counts.num_possible = uint64_t{1} << m;
  const uint32_t beta = packed_.num_processes();
  if (m <= kDenseMaxParents) {
    const uint32_t size = 1u << m;
    std::vector<uint32_t> dense0(size, 0), dense1(size, 0);
    for (uint32_t p = 0; p < beta; ++p) {
      if (child_bits_[p]) {
        ++dense1[(*codes)[p]];
      } else {
        ++dense0[(*codes)[p]];
      }
    }
    if (identity) {
      EmitDense(dense0, dense1, counts);
    } else {
      // Remap each observed internal combo to the canonical encoding, then
      // restore ascending order.
      std::vector<std::pair<uint32_t, uint32_t>> remapped;  // (combo, slot)
      for (uint32_t j = 0; j < size; ++j) {
        if (dense0[j] + dense1[j] == 0) continue;
        uint32_t out = 0;
        uint32_t bits = j;
        while (bits != 0) {
          out |= 1u << perm[std::countr_zero(bits)];
          bits &= bits - 1;
        }
        remapped.emplace_back(out, j);
      }
      std::sort(remapped.begin(), remapped.end());
      counts.combo.reserve(remapped.size());
      counts.child0_count.reserve(remapped.size());
      counts.child1_count.reserve(remapped.size());
      for (const auto& [out, j] : remapped) {
        counts.combo.push_back(out);
        counts.child0_count.push_back(dense0[j]);
        counts.child1_count.push_back(dense1[j]);
      }
    }
  } else {
    std::unordered_map<uint32_t, std::pair<uint32_t, uint32_t>> sparse;
    sparse.reserve(beta);
    for (uint32_t p = 0; p < beta; ++p) {
      uint32_t out = 0;
      uint32_t bits = (*codes)[p];
      while (bits != 0) {
        out |= 1u << perm[std::countr_zero(bits)];
        bits &= bits - 1;
      }
      auto& entry = sparse[out];
      if (child_bits_[p]) {
        ++entry.second;
      } else {
        ++entry.first;
      }
    }
    EmitSparse(sparse, counts);
  }
  counts.num_unobserved = counts.num_possible - counts.num_observed();
  return counts;
}

CandidateCube::CandidateCube(const diffusion::StatusMatrix& statuses,
                             graph::NodeId child,
                             std::vector<graph::NodeId> candidates)
    : child_(child), candidates_(std::move(candidates)) {
  TENDS_CHECK(candidates_.size() <= kMaxCubeCandidates)
      << "candidate set too large for a cube: " << candidates_.size();
  TENDS_CHECK(std::is_sorted(candidates_.begin(), candidates_.end()))
      << "cube candidates must be sorted ascending";
  cells_.assign((size_t{1} << candidates_.size()) * 2, 0);
  AddRows(statuses, 0, statuses.num_processes());
}

CandidateCube::CandidateCube(const PackedStatuses& packed, graph::NodeId child,
                             std::vector<graph::NodeId> candidates)
    : child_(child), candidates_(std::move(candidates)) {
  TENDS_CHECK(candidates_.size() <= kMaxCubeCandidates)
      << "candidate set too large for a cube: " << candidates_.size();
  TENDS_CHECK(std::is_sorted(candidates_.begin(), candidates_.end()))
      << "cube candidates must be sorted ascending";
  const uint32_t k = static_cast<uint32_t>(candidates_.size());
  const uint32_t beta = packed.num_processes();
  const uint32_t words = packed.words_per_node();
  cells_.assign((size_t{1} << k) * 2, 0);
  // Scatter each candidate's column into per-process codes (set bits only;
  // pad bits beyond beta are guaranteed zero), OR-ing a live mask of the
  // processes where any candidate is infected. The tally then walks only
  // the live positions: every dead position has code 0, so its two cells
  // fall out of per-word popcounts against the child column. Cells are the
  // same integer tallies the row-major constructor computes, just
  // accumulated column-by-column instead of row-by-row.
  static_assert(kMaxCubeCandidates <= 16, "codes are 16-bit");
  std::vector<uint16_t> codes(static_cast<size_t>(words) * 64, 0);
  std::vector<uint64_t> live(words, 0);
  for (uint32_t b = 0; b < k; ++b) {
    const uint64_t* col = packed.Column(candidates_[b]);
    const uint16_t bit = static_cast<uint16_t>(1u << b);
    for (uint32_t w = 0; w < words; ++w) {
      uint64_t word = col[w];
      live[w] |= word;
      while (word != 0) {
        codes[w * 64 + static_cast<uint32_t>(std::countr_zero(word))] |= bit;
        word &= word - 1;
      }
    }
  }
  const uint64_t* child_col = packed.Column(child_);
  uint64_t child_total = 0;
  uint64_t dead_total = 0;
  uint64_t dead_child1 = 0;
  for (uint32_t w = 0; w < words; ++w) {
    const uint64_t valid = (w + 1 == words && (beta % 64) != 0)
                               ? (uint64_t{1} << (beta % 64)) - 1
                               : ~uint64_t{0};
    const uint64_t cw = child_col[w];
    child_total += static_cast<uint64_t>(std::popcount(cw));
    const uint64_t dead = ~live[w] & valid;
    dead_total += static_cast<uint64_t>(std::popcount(dead));
    dead_child1 += static_cast<uint64_t>(std::popcount(cw & dead));
    uint64_t l = live[w];
    while (l != 0) {
      const uint32_t p = static_cast<uint32_t>(std::countr_zero(l));
      l &= l - 1;
      const uint32_t s = static_cast<uint32_t>((cw >> p) & 1);
      ++cells_[static_cast<size_t>(codes[w * 64 + p]) * 2 + s];
    }
  }
  cells_[0] += static_cast<uint32_t>(dead_total - dead_child1);
  cells_[1] += static_cast<uint32_t>(dead_child1);
  child_infected_ = static_cast<uint32_t>(child_total);
  num_processes_ = beta;
}

void CandidateCube::AddRows(const diffusion::StatusMatrix& statuses,
                            uint32_t begin_process, uint32_t end_process) {
  TENDS_CHECK(begin_process == num_processes_)
      << "non-contiguous cube append: cube covers " << num_processes_
      << " processes, chunk starts at " << begin_process;
  TENDS_CHECK(end_process >= begin_process &&
              end_process <= statuses.num_processes())
      << "cube append range [" << begin_process << ", " << end_process
      << ") exceeds the " << statuses.num_processes() << "-process matrix";
  const uint32_t k = static_cast<uint32_t>(candidates_.size());
  for (uint32_t p = begin_process; p < end_process; ++p) {
    const uint8_t* row = statuses.Row(p);
    uint32_t code = 0;
    for (uint32_t b = 0; b < k; ++b) {
      code |= static_cast<uint32_t>(row[candidates_[b]] & 1) << b;
    }
    const uint32_t s = row[child_] & 1;
    ++cells_[static_cast<size_t>(code) * 2 + s];
    child_infected_ += s;
  }
  num_processes_ = end_process;
}

JointCounts CandidateCube::Count(
    const std::vector<graph::NodeId>& parents) const {
  const uint32_t k = static_cast<uint32_t>(candidates_.size());
  const uint32_t m = static_cast<uint32_t>(parents.size());
  // Both lists are sorted ascending, so one merge pass marks the kept
  // positions — and guarantees the surviving positions read off in parent
  // order, which is exactly the canonical bit encoding CountJoint uses.
  bool keep[kMaxCubeCandidates] = {};
  uint32_t matched = 0;
  for (uint32_t b = 0, q = 0; b < k && q < m; ++b) {
    if (candidates_[b] == parents[q]) {
      keep[b] = true;
      ++q;
      ++matched;
    }
  }
  TENDS_CHECK(matched == m)
      << "cube queried with a parent set that is not a sorted subset of its "
         "candidates";

  // Marginalize out the dropped positions, highest first so every lower
  // position keeps its bit index until its own turn. Removing index b from
  // a d-dimensional cube maps compressed code c to sources (high|low) and
  // (high|low|2^b); both are >= c, so ascending writes never clobber an
  // unread source cell. The first fold reads the full cube straight out of
  // cells_ into scratch_ (halving it in the process — no 2^|C| copy);
  // later folds run in scratch_ in place. Total work is the sum of the
  // shrinking cube sizes: O(2^|C|), independent of beta.
  scratch_.resize(cells_.size());
  const uint32_t* source = cells_.data();
  uint32_t d = k;
  for (uint32_t b = k; b-- > 0;) {
    if (keep[b]) continue;
    const uint32_t low_mask = (1u << b) - 1;
    const uint32_t half = 1u << (d - 1);
    for (uint32_t c = 0; c < half; ++c) {
      const uint32_t low = c & low_mask;
      const uint32_t high = (c >> b) << (b + 1);
      const size_t s0 = static_cast<size_t>(high | low) * 2;
      const size_t s1 = s0 + (size_t{2} << b);
      const uint32_t child0 = source[s0] + source[s1];
      const uint32_t child1 = source[s0 + 1] + source[s1 + 1];
      scratch_[static_cast<size_t>(c) * 2] = child0;
      scratch_[static_cast<size_t>(c) * 2 + 1] = child1;
    }
    source = scratch_.data();
    --d;
  }

  // When nothing was dropped (m == k) `source` still points at cells_ and
  // the emit loop reads the cube directly — no staging at all.
  JointCounts counts;
  counts.num_possible = uint64_t{1} << m;
  const uint32_t size = 1u << m;
  for (uint32_t j = 0; j < size; ++j) {
    const uint32_t child0 = source[static_cast<size_t>(j) * 2];
    const uint32_t child1 = source[static_cast<size_t>(j) * 2 + 1];
    if (child0 + child1 == 0) continue;
    counts.combo.push_back(j);
    counts.child0_count.push_back(child0);
    counts.child1_count.push_back(child1);
  }
  counts.num_unobserved = counts.num_possible - counts.num_observed();
  return counts;
}

}  // namespace tends::inference
