#include "inference/counting.h"

#include <bit>
#include <unordered_map>

#include "common/logging.h"

namespace tends::inference {

JointCounts CountJoint(const diffusion::StatusMatrix& statuses,
                       graph::NodeId child,
                       const std::vector<graph::NodeId>& parents) {
  const uint32_t s = static_cast<uint32_t>(parents.size());
  TENDS_CHECK(s <= kMaxCountableParents) << "parent set too large: " << s;
  JointCounts counts;
  counts.num_possible = uint64_t{1} << s;
  const uint32_t beta = statuses.num_processes();

  if (s <= 14) {
    // Dense tables (<= 16384 entries).
    const uint32_t size = 1u << s;
    std::vector<uint32_t> dense0(size, 0), dense1(size, 0);
    for (uint32_t p = 0; p < beta; ++p) {
      const uint8_t* row = statuses.Row(p);
      uint32_t combo = 0;
      for (uint32_t b = 0; b < s; ++b) {
        combo |= static_cast<uint32_t>(row[parents[b]] & 1) << b;
      }
      if (row[child]) {
        ++dense1[combo];
      } else {
        ++dense0[combo];
      }
    }
    for (uint32_t j = 0; j < size; ++j) {
      if (dense0[j] + dense1[j] == 0) continue;
      counts.combo.push_back(j);
      counts.child0_count.push_back(dense0[j]);
      counts.child1_count.push_back(dense1[j]);
    }
  } else {
    std::unordered_map<uint32_t, std::pair<uint32_t, uint32_t>> sparse;
    sparse.reserve(beta);
    for (uint32_t p = 0; p < beta; ++p) {
      const uint8_t* row = statuses.Row(p);
      uint32_t combo = 0;
      for (uint32_t b = 0; b < s; ++b) {
        combo |= static_cast<uint32_t>(row[parents[b]] & 1) << b;
      }
      auto& entry = sparse[combo];
      if (row[child]) {
        ++entry.second;
      } else {
        ++entry.first;
      }
    }
    counts.combo.reserve(sparse.size());
    for (const auto& [combo, pair] : sparse) {
      counts.combo.push_back(combo);
      counts.child0_count.push_back(pair.first);
      counts.child1_count.push_back(pair.second);
    }
  }
  counts.num_unobserved = counts.num_possible - counts.num_observed();
  return counts;
}

PairCounts CountPair(const diffusion::StatusMatrix& statuses,
                     graph::NodeId i, graph::NodeId j) {
  PairCounts counts;
  for (uint32_t p = 0; p < statuses.num_processes(); ++p) {
    const uint8_t* row = statuses.Row(p);
    uint8_t a = row[i] & 1;
    uint8_t b = row[j] & 1;
    if (a) {
      if (b) {
        ++counts.c11;
      } else {
        ++counts.c10;
      }
    } else {
      if (b) {
        ++counts.c01;
      } else {
        ++counts.c00;
      }
    }
  }
  return counts;
}

PackedStatuses::PackedStatuses(const diffusion::StatusMatrix& statuses)
    : num_nodes_(statuses.num_nodes()),
      num_processes_(statuses.num_processes()),
      words_per_node_((statuses.num_processes() + 63) / 64) {
  words_.assign(static_cast<size_t>(num_nodes_) * words_per_node_, 0);
  for (uint32_t p = 0; p < num_processes_; ++p) {
    const uint8_t* row = statuses.Row(p);
    const uint32_t word = p >> 6;
    const uint64_t bit = uint64_t{1} << (p & 63);
    for (uint32_t v = 0; v < num_nodes_; ++v) {
      if (row[v]) {
        words_[static_cast<size_t>(v) * words_per_node_ + word] |= bit;
      }
    }
  }
}

PairCounts PackedStatuses::CountPair(graph::NodeId i, graph::NodeId j) const {
  const uint64_t* a = Column(i);
  const uint64_t* b = Column(j);
  uint32_t c11 = 0, c10 = 0, c01 = 0;
  for (uint32_t w = 0; w < words_per_node_; ++w) {
    c11 += static_cast<uint32_t>(std::popcount(a[w] & b[w]));
    c10 += static_cast<uint32_t>(std::popcount(a[w] & ~b[w]));
    c01 += static_cast<uint32_t>(std::popcount(~a[w] & b[w]));
  }
  // ~a & ~b would count padding bits beyond num_processes_; derive c00.
  PairCounts counts;
  counts.c11 = c11;
  counts.c10 = c10;
  counts.c01 = c01;
  counts.c00 = num_processes_ - c11 - c10 - c01;
  return counts;
}

uint32_t PackedStatuses::InfectedCount(graph::NodeId v) const {
  const uint64_t* a = Column(v);
  uint32_t count = 0;
  for (uint32_t w = 0; w < words_per_node_; ++w) {
    count += static_cast<uint32_t>(std::popcount(a[w]));
  }
  return count;
}

}  // namespace tends::inference
