#ifndef TENDS_INFERENCE_TENDS_H_
#define TENDS_INFERENCE_TENDS_H_

#include <optional>
#include <string_view>
#include <vector>

#include "inference/checkpoint.h"
#include "inference/imi.h"
#include "inference/kmeans_threshold.h"
#include "inference/network_inference.h"
#include "inference/parent_search.h"

namespace tends::inference {

class SparseCandidateIndex;

/// How the pairwise-correlation artifact behind candidate pruning is
/// generated and stored.
enum class CandidateMode {
  /// Dense n x n pair-count and IMI matrices (the reference oracle).
  /// O(n^2) memory — the paper's formulation, and the path every sparse
  /// result is differentially tested against.
  kDense,
  /// Sparse pipeline: an inverted index over the packed status columns
  /// enumerates only co-occurring pairs, and only strictly positive IMI
  /// values are stored (inference/sparse_candidates.h). O(nnz) memory,
  /// byte-identical networks to kDense. Requires infection MI, enabled
  /// pruning, and a non-negative tau (Validate enforces all three — the
  /// bit-exactness argument needs them).
  kSparse,
};

/// Options of the TENDS algorithm (Algorithm 1).
struct TendsOptions {
  /// Use the infection-MI pruning of §IV-B. Disabling it makes every other
  /// node a candidate parent of every node (prohibitively slow on anything
  /// but toy graphs; the paper likewise omits the unpruned runs).
  bool enable_pruning = true;
  /// Scales the automatically found threshold tau (the Fig. 10/11 sweep
  /// uses 0.4..2.0).
  double tau_multiplier = 1.0;
  /// Fixed threshold instead of the K-means one (used by tests).
  std::optional<double> tau_override;
  /// Pairwise statistic behind the pruning matrix: infection MI (the
  /// paper's Eq. 25) or traditional MI (the Fig. 10/11 ablation).
  MiVariant mi_variant = MiVariant::kInfection;
  /// Deprecated alias of `mi_variant` (true = kTraditional), kept
  /// source-compatible for one release. Setting it warns once per process
  /// (like the removed --num_threads CLI alias did) and wins over the
  /// default-valued `mi_variant`; read ResolvedMiVariant(), never this
  /// field, inside the pipeline.
  bool use_traditional_mi = false;
  /// The variant the run actually uses: traditional when either the new
  /// field or the deprecated alias asks for it.
  MiVariant ResolvedMiVariant() const {
    return use_traditional_mi ? MiVariant::kTraditional : mi_variant;
  }
  /// Cap on |P_i|: when more candidates pass the tau test, only the
  /// highest-IMI ones are kept (engineering safeguard; see DESIGN.md).
  uint32_t max_candidates = 16;
  /// Worker threads for the per-node parent searches (the subproblems are
  /// independent; results are identical for any thread count).
  uint32_t num_threads = 1;
  /// Reject status matrices containing all-0/all-1 columns with
  /// kInvalidArgument (such a node's parents are unidentifiable — there is
  /// no signal to compute on). Default true; harnesses that deliberately
  /// feed tiny low-beta simulations (where a node can legitimately escape
  /// every process) may disable it to get the best-effort topology with an
  /// empty parent set for the degenerate node.
  bool reject_degenerate_columns = true;
  /// Candidate-generation pipeline. kSparse produces byte-identical
  /// networks at O(nnz) instead of O(n^2) memory; kDense stays the
  /// default so every pre-existing configuration is unchanged.
  CandidateMode candidate_mode = CandidateMode::kDense;
  /// Parent-search knobs. Thread count is NOT among them by design:
  /// `num_threads` above is the single threading knob of a TENDS run (the
  /// per-node searches are what runs in parallel), so the two can never
  /// disagree.
  ParentSearchOptions search;

  /// Crash-safe checkpoint/resume (inference/checkpoint.h). Disabled by
  /// default; when a directory is set, completed per-node results are
  /// durably flushed during the run and a resume skips every node the
  /// checkpoint already holds — with output byte-identical to an
  /// uninterrupted run. Pure durability policy: never part of the result
  /// fingerprint.
  CheckpointConfig checkpoint;

  /// Rejects contradictory or degenerate settings with kInvalidArgument:
  /// `tau_multiplier <= 0`, `max_candidates == 0`, `num_threads == 0`,
  /// `tau_override` combined with `tau_multiplier != 1.0` (the override
  /// fixes tau directly — bake the scale into the override instead of
  /// silently ignoring one of the two), malformed checkpoint configs
  /// (resume without a directory, an enabled config with no flush trigger
  /// or an empty stem), and sparse candidate mode combined with settings
  /// that break its bit-exactness argument (traditional MI, disabled
  /// pruning, a negative tau_override). Called at the top of every
  /// Tends::Infer and InferenceSession run.
  Status Validate() const;
};

/// Post-run diagnostics (valid after a successful Infer call).
struct TendsDiagnostics {
  double tau = 0.0;
  uint32_t kmeans_iterations = 0;
  /// Mean |P_i| over nodes, after pruning and the max_candidates cap.
  double mean_candidates = 0.0;
  uint32_t max_candidates_seen = 0;
  /// Nodes whose candidate set was clipped by max_candidates.
  uint32_t clipped_nodes = 0;
  uint64_t total_score_evaluations = 0;
  /// Final network score g(T) of the inferred topology (Eq. 12; sums only
  /// the completed nodes when the run was cut short).
  double network_score = 0.0;
  /// True when the run context (deadline or cancellation) stopped the run
  /// early; the returned network is the best-so-far partial topology.
  bool deadline_expired = false;
  /// Nodes whose parent search ran to completion. Equals num_nodes on an
  /// uninterrupted run. Includes resumed nodes — a checkpointed node *was*
  /// completed, just by an earlier process.
  uint32_t nodes_completed = 0;
  /// Nodes served from a checkpoint instead of recomputed (0 without
  /// --resume).
  uint32_t nodes_resumed = 0;

  /// Compact single-object JSON rendering of every field (stable key
  /// names), for `tends_cli infer --verbose` and machine consumers.
  std::string ToJson() const;
};

/// TENDS: reconstructs a diffusion network topology from final infection
/// statuses only (no timestamps, sources, or edge-count prior).
class Tends : public NetworkInference {
 public:
  explicit Tends(TendsOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "TENDS"; }

  /// Full TendsDiagnostics of the most recent successful Infer call as
  /// JSON ("{}"-shaped defaults before the first).
  std::string DiagnosticsJson() const override {
    return diagnostics_.ToJson();
  }

  using NetworkInference::Infer;

  /// Uses only observations.statuses.
  StatusOr<InferredNetwork> Infer(
      const diffusion::DiffusionObservations& observations,
      const RunContext& context) override;

  /// The native entry point: status matrix in, topology out. Honors the
  /// context at per-node and per-combination granularity: on expiry the
  /// remaining nodes are skipped and the partial network assembled so far
  /// is returned with diagnostics().deadline_expired set.
  StatusOr<InferredNetwork> InferFromStatuses(
      const diffusion::StatusMatrix& statuses,
      const RunContext& context = RunContext());

  const TendsDiagnostics& diagnostics() const { return diagnostics_; }
  const TendsOptions& options() const { return options_; }

 private:
  TendsOptions options_;
  TendsDiagnostics diagnostics_;
};

namespace internal {

/// Read-only inputs of the per-node TENDS loop, however they were obtained:
/// computed fresh by Tends::InferFromStatuses or served memoized by an
/// InferenceSession. All pointers are non-owning and must outlive the call.
struct TendsArtifacts {
  const diffusion::StatusMatrix* statuses = nullptr;
  const PackedStatuses* packed = nullptr;
  /// Matrix of the variant options.ResolvedMiVariant() selects. Exactly
  /// one of imi / sparse is non-null, matching options.candidate_mode.
  const ImiMatrix* imi = nullptr;
  /// Sparse positive-IMI candidate index (candidate_mode = kSparse).
  const SparseCandidateIndex* sparse = nullptr;
  /// Pruning threshold, already scaled by tau_multiplier (or the override).
  double tau = 0.0;
  /// Iterations the K-means took to find the base threshold (0 when a
  /// tau_override bypassed it); copied into the diagnostics.
  uint32_t kmeans_iterations = 0;
};

/// The shared core of TENDS: pruning at artifacts.tau plus the greedy
/// per-node parent searches, parallelized over nodes with results
/// assembled in node order (byte-identical for any thread count). Both
/// Tends::InferFromStatuses and InferenceSession::Run call this with the
/// same artifact values, which is what makes session runs byte-identical
/// to fresh ones. `diagnostics` must be freshly reset by the caller; the
/// loop fills every field from tau onward.
///
/// When options.checkpoint is enabled the loop periodically flushes
/// completed nodes to the checkpoint file (and always flushes on exit, so
/// a deadline-expired run leaves its best-so-far work resumable); with
/// resume set it first loads the file and skips every node it holds.
/// Errors are durability failures only — exhausted write retries, a
/// corrupt or stale resume source; a disabled checkpoint config can never
/// fail.
StatusOr<InferredNetwork> RunTendsNodeLoop(const TendsArtifacts& artifacts,
                                           const TendsOptions& options,
                                           const RunContext& context,
                                           TendsDiagnostics* diagnostics);

/// The pruning step of Algorithm 1 for one node: every j != i whose
/// pairwise value exceeds artifacts.tau, clipped to the max_candidates
/// best by (value desc, id asc), returned ascending by id. Factored out
/// of RunTendsNodeLoop so the incremental session runner computes
/// *identical* candidate sets (its dirty-node rule compares them across
/// epochs). `clipped` (may be null) reports whether the cap dropped any
/// passing candidate. With pruning disabled, all other nodes qualify and
/// the cap still applies (by value ordering, as the node loop always did).
std::vector<graph::NodeId> PruneCandidates(const TendsArtifacts& artifacts,
                                           const TendsOptions& options,
                                           graph::NodeId node, bool* clipped);

}  // namespace internal

}  // namespace tends::inference

#endif  // TENDS_INFERENCE_TENDS_H_
