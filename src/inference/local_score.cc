#include "inference/local_score.h"

#include <cmath>

#include "common/logging.h"

namespace tends::inference {

namespace {

// n * log2(n / d); 0 when n == 0.
inline double NLogRatio(uint32_t n, uint32_t d) {
  if (n == 0) return 0.0;
  return n * std::log2(static_cast<double>(n) / d);
}

}  // namespace

double LogLikelihood(const JointCounts& counts) {
  double ll = 0.0;
  for (size_t j = 0; j < counts.num_observed(); ++j) {
    const uint32_t n0 = counts.child0_count[j];
    const uint32_t n1 = counts.child1_count[j];
    const uint32_t nj = n0 + n1;
    ll += NLogRatio(n0, nj) + NLogRatio(n1, nj);
  }
  return ll;
}

double ScorePenalty(const JointCounts& counts) {
  double penalty = 0.0;
  for (size_t j = 0; j < counts.num_observed(); ++j) {
    const uint32_t nj = counts.child0_count[j] + counts.child1_count[j];
    penalty += std::log2(static_cast<double>(nj) + 1.0);
  }
  return 0.5 * penalty;
}

double LocalScore(const JointCounts& counts) {
  return LogLikelihood(counts) - ScorePenalty(counts);
}

double EmptySetLocalScore(uint32_t n1, uint32_t n2) {
  const uint32_t beta = n1 + n2;
  if (beta == 0) return 0.0;
  return NLogRatio(n1, beta) + NLogRatio(n2, beta) -
         0.5 * std::log2(static_cast<double>(beta) + 1.0);
}

double DeltaI(uint32_t beta, uint32_t n1, uint32_t n2) {
  TENDS_CHECK(n1 + n2 == beta) << "N1 + N2 must equal beta";
  double delta = std::log2(static_cast<double>(beta) + 1.0);
  if (n1 > 0) delta += 2.0 * n1 * std::log2(static_cast<double>(beta) / n1);
  if (n2 > 0) delta += 2.0 * n2 * std::log2(static_cast<double>(beta) / n2);
  return delta;
}

bool WithinParentBound(size_t parent_set_size, uint64_t phi, double delta) {
  return static_cast<double>(parent_set_size) <=
         std::log2(static_cast<double>(phi) + delta);
}

double LocalScoreFor(const diffusion::StatusMatrix& statuses,
                     graph::NodeId child,
                     const std::vector<graph::NodeId>& parents) {
  return LocalScore(CountJoint(statuses, child, parents));
}

double NetworkScore(const diffusion::StatusMatrix& statuses,
                    const std::vector<std::vector<graph::NodeId>>& parents) {
  TENDS_CHECK(parents.size() == statuses.num_nodes())
      << "one parent set per node required";
  double total = 0.0;
  for (uint32_t v = 0; v < statuses.num_nodes(); ++v) {
    total += LocalScoreFor(statuses, v, parents[v]);
  }
  return total;
}

}  // namespace tends::inference
