#ifndef TENDS_INFERENCE_IMI_H_
#define TENDS_INFERENCE_IMI_H_

#include <vector>

#include "diffusion/cascade.h"
#include "inference/counting.h"

namespace tends::inference {

/// Which pairwise correlation statistic a pipeline scores node pairs with:
/// the paper's infection mutual information (Eq. 25) or traditional mutual
/// information (Eq. 24, the MI-vs-IMI ablation). This replaces the
/// `bool use_traditional_mi` flags that used to thread through ImiMatrix,
/// InferenceSession, and TendsOptions; the bool forms survive as
/// deprecated aliases for one release.
enum class MiVariant {
  kInfection,
  kTraditional,
};

/// The legacy bool encoding of a variant (checkpoint fingerprints and the
/// deprecated flag surfaces hash/print exactly this bit).
inline constexpr bool IsTraditionalMi(MiVariant variant) {
  return variant == MiVariant::kTraditional;
}

inline constexpr const char* MiVariantName(MiVariant variant) {
  return IsTraditionalMi(variant) ? "traditional" : "infection";
}

/// Pointwise mutual-information term MI(X_i = a, X_j = b) =
/// P(a,b) * log2(P(a,b) / (P_i(a) * P_j(b))); 0 when P(a,b) = 0.
double PointwiseMiTerm(const PairCounts& counts, int a, int b);

/// Traditional mutual information MI(X_i, X_j): sum of the four pointwise
/// terms (Eq. 24 summed over outcomes). Used by the MI-vs-IMI ablation.
double TraditionalMi(const PairCounts& counts);

/// Infection mutual information (Eq. 25):
///   MI(1,1) + MI(0,0) - |MI(1,0)| - |MI(0,1)|.
/// Positive for positively correlated infections, near 0 for independent
/// nodes, negative for negatively correlated infections.
double InfectionMi(const PairCounts& counts);

/// Infection MI of a node pair in its canonical (min-id, max-id)
/// orientation, reconstructed from the co-infection count and the two
/// marginal infected counts. Bit-identical to
/// InfectionMi(packed.CountPair(lo, hi)) — the orientation the dense
/// ImiMatrix evaluates once per unordered pair — so the sparse candidate
/// pipeline can store exactly the doubles the dense matrix would hold.
/// (The orientation matters: InfectionMi is mathematically symmetric but
/// sums its four terms in a fixed order, so swapping c10/c01 could round
/// differently.)
double InfectionMiFromCoInfection(uint32_t c11, uint32_t marginal_lo,
                                  uint32_t marginal_hi,
                                  uint32_t num_processes);

/// The pairwise contingency tables of every unordered node pair, in
/// row-major strictly-upper-triangle order (pair (i, j), i < j, at index
/// i*n - i*(i+1)/2 + (j - i - 1)). This is the O(n^2 * beta / 64) part of
/// the IMI pass; both MI variants are cheap O(n^2) functions of it, which
/// is what lets InferenceSession memoize the counts once and derive the
/// IMI and traditional-MI matrices from the same table.
std::vector<PairCounts> ComputePairCountsUpperTriangle(
    const PackedStatuses& packed);

/// Symmetric matrix of pairwise correlation values over all node pairs.
class ImiMatrix {
 public:
  /// Computes the requested variant for every unordered pair via bit-packed
  /// counting: O(n^2 * beta / 64).
  ImiMatrix(const diffusion::StatusMatrix& statuses, MiVariant variant);

  /// Same, from an already-packed view (shared with the parent-search
  /// counting kernel so the matrix is packed once per inference run).
  ImiMatrix(const PackedStatuses& packed, MiVariant variant);

  /// From a precomputed pairwise-count table (the session's memoized
  /// artifact; layout of ComputePairCountsUpperTriangle). All constructors
  /// funnel through this one, so the float operations run in one order and
  /// the resulting matrices are bit-identical however the counts were
  /// obtained.
  ImiMatrix(uint32_t num_nodes, const std::vector<PairCounts>& upper_triangle,
            MiVariant variant);

  /// Deprecated bool forms (true = traditional MI). Prefer MiVariant.
  [[deprecated("pass a MiVariant instead of a bool")]]
  ImiMatrix(const diffusion::StatusMatrix& statuses, bool use_traditional_mi)
      : ImiMatrix(statuses, use_traditional_mi ? MiVariant::kTraditional
                                               : MiVariant::kInfection) {}
  [[deprecated("pass a MiVariant instead of a bool")]]
  ImiMatrix(const PackedStatuses& packed, bool use_traditional_mi)
      : ImiMatrix(packed, use_traditional_mi ? MiVariant::kTraditional
                                             : MiVariant::kInfection) {}
  [[deprecated("pass a MiVariant instead of a bool")]]
  ImiMatrix(uint32_t num_nodes, const std::vector<PairCounts>& upper_triangle,
            bool use_traditional_mi)
      : ImiMatrix(num_nodes, upper_triangle,
                  use_traditional_mi ? MiVariant::kTraditional
                                     : MiVariant::kInfection) {}

  uint32_t num_nodes() const { return num_nodes_; }

  /// Payload bytes of the dense value matrix (n * n * sizeof(double));
  /// feeds the tends.mem.imi_matrix_bytes gauge at allocation sites.
  size_t ByteSize() const { return values_.size() * sizeof(double); }

  double Get(graph::NodeId i, graph::NodeId j) const {
    return values_[static_cast<size_t>(i) * num_nodes_ + j];
  }

  /// All strictly-upper-triangle values (each unordered pair once).
  std::vector<double> UpperTriangleValues() const;

 private:
  uint32_t num_nodes_;
  std::vector<double> values_;
};

}  // namespace tends::inference

#endif  // TENDS_INFERENCE_IMI_H_
