#include "inference/netinf.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/timer.h"
#include "diffusion/cascade.h"
#include "diffusion/validation.h"

namespace tends::inference {

namespace {

struct HeapEntry {
  double gain;
  uint32_t edge_id;
  uint64_t computed_at;

  bool operator<(const HeapEntry& other) const {
    if (gain != other.gain) return gain < other.gain;
    return edge_id > other.edge_id;
  }
};

}  // namespace

StatusOr<InferredNetwork> NetInf::Infer(
    const diffusion::DiffusionObservations& observations,
    const RunContext& context) {
  if (options_.num_edges == 0) {
    return Status::InvalidArgument("NetInf requires the target edge count");
  }
  MetricsRegistry* metrics = context.metrics;
  TENDS_METRICS_STAGE(metrics, "netinf");
  TENDS_TRACE_SPAN(metrics, "netinf_infer");
  Timer timer;
  const auto& cascades = observations.cascades;
  TENDS_RETURN_IF_ERROR(
      diffusion::ValidateCascades(cascades, observations.num_nodes()));
  const uint32_t n = observations.num_nodes();
  const uint32_t num_cascades = static_cast<uint32_t>(cascades.size());

  // Candidate edges: ordered time-respecting co-infected pairs.
  std::vector<graph::Edge> edges;
  std::unordered_set<uint64_t> seen;
  for (const auto& cascade : cascades) {
    std::vector<graph::NodeId> infected;
    for (uint32_t v = 0; v < n; ++v) {
      if (cascade.Infected(v)) infected.push_back(v);
    }
    for (graph::NodeId v : infected) {
      const int32_t tv = cascade.infection_time[v];
      if (tv == 0) continue;
      for (graph::NodeId u : infected) {
        if (cascade.infection_time[u] >= tv) continue;
        uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
        if (seen.insert(key).second) edges.push_back({u, v});
      }
    }
  }
  if (edges.empty()) {
    diagnostics_ = {std::string(name()), timer.ElapsedSeconds(),
                    context.ShouldStop()};
    return InferredNetwork(n);
  }
  TENDS_METRIC_ADD(metrics, "tends.netinf.candidate_edges", edges.size());
  Counter* gains_counter =
      TENDS_METRIC_COUNTER(metrics, "tends.netinf.gain_evaluations");

  // explained[c * n + v]: whether node v already has a selected
  // time-respecting parent in cascade c. In the best-tree likelihood each
  // node keeps only its best parent, so with uniform weights an edge only
  // contributes to unexplained heads (gain log(w/eps) per cascade).
  std::vector<uint8_t> explained(static_cast<size_t>(num_cascades) * n, 0);
  const double per_cascade_gain =
      std::log(options_.edge_weight / options_.epsilon);

  auto compute_gain = [&](const graph::Edge& e) {
    TENDS_COUNTER_ADD(gains_counter, 1);
    uint32_t newly_explained = 0;
    for (uint32_t c = 0; c < num_cascades; ++c) {
      const auto& time = cascades[c].infection_time;
      const int32_t tv = time[e.to];
      const int32_t tu = time[e.from];
      if (tv <= 0 || tu == diffusion::kNeverInfected || tu >= tv) continue;
      if (!explained[static_cast<size_t>(c) * n + e.to]) ++newly_explained;
    }
    return newly_explained * per_cascade_gain;
  };

  // The context is polled while seeding the heap (per candidate edge) and
  // once per CELF pop; on expiry the edges selected so far are returned.
  StopChecker stop(context);
  std::priority_queue<HeapEntry> heap;
  for (uint32_t id = 0; id < edges.size(); ++id) {
    if (stop.ShouldStop()) break;
    heap.push({compute_gain(edges[id]), id, 0});
  }
  InferredNetwork network(n);
  uint64_t round = 0;
  while (network.num_edges() < options_.num_edges && !heap.empty()) {
    if (stop.ShouldStopNow()) break;
    HeapEntry top = heap.top();
    heap.pop();
    if (top.computed_at != round) {
      top.gain = compute_gain(edges[top.edge_id]);
      top.computed_at = round;
      heap.push(top);
      continue;
    }
    if (top.gain <= 0.0) break;  // nothing left to explain
    const graph::Edge& e = edges[top.edge_id];
    for (uint32_t c = 0; c < num_cascades; ++c) {
      const auto& time = cascades[c].infection_time;
      const int32_t tv = time[e.to];
      const int32_t tu = time[e.from];
      if (tv <= 0 || tu == diffusion::kNeverInfected || tu >= tv) continue;
      explained[static_cast<size_t>(c) * n + e.to] = 1;
    }
    network.AddEdge(e.from, e.to, top.gain);
    ++round;
  }
  TENDS_METRIC_ADD(metrics, "tends.netinf.edges_selected",
                   network.num_edges());
  diagnostics_ = {std::string(name()), timer.ElapsedSeconds(),
                  context.ShouldStop()};
  return network;
}

}  // namespace tends::inference
