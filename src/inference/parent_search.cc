#include "inference/parent_search.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/logging.h"
#include "common/metrics.h"
#include "inference/local_score.h"

namespace tends::inference {

namespace {

// Score under the configured mode: penalized (Eq. 13) or likelihood-only
// (the ablation of the statistical-error penalty).
double ScoreOf(const JointCounts& counts, const ParentSearchOptions& options) {
  return options.use_penalty ? LocalScore(counts) : LogLikelihood(counts);
}

}  // namespace

void ForEachCombination(
    const std::vector<graph::NodeId>& candidates, uint32_t max_size,
    const std::function<void(const std::vector<graph::NodeId>&)>& visit) {
  const uint32_t k = static_cast<uint32_t>(candidates.size());
  max_size = std::min(max_size, k);
  std::vector<graph::NodeId> subset;
  std::vector<uint32_t> index;
  for (uint32_t size = 1; size <= max_size; ++size) {
    index.resize(size);
    for (uint32_t b = 0; b < size; ++b) index[b] = b;
    while (true) {
      subset.clear();
      for (uint32_t b = 0; b < size; ++b) subset.push_back(candidates[index[b]]);
      visit(subset);
      // Advance to the next size-`size` combination.
      int32_t pos = static_cast<int32_t>(size) - 1;
      while (pos >= 0 && index[pos] == k - size + pos) --pos;
      if (pos < 0) break;
      ++index[pos];
      for (uint32_t b = pos + 1; b < size; ++b) index[b] = index[b - 1] + 1;
    }
  }
}

ScoringStrategy PlanScoringStrategy(const ParentSearchOptions& options,
                                    uint32_t num_processes,
                                    size_t num_candidates) {
  // Eligibility gate: the cube must be able to hold the candidate set at
  // all. An empty candidate set has nothing to accelerate, a set over the
  // caps cannot be cubed, and the memory budget bounds the per-node cell
  // allocation (2^|C| codes x 2 child states x 4-byte cells).
  const uint32_t cap =
      std::min(options.max_cube_candidates, CandidateCube::kMaxCubeCandidates);
  const bool eligible =
      num_candidates > 0 && num_candidates <= cap &&
      (uint64_t{8} << num_candidates) <= options.cube_memory_budget_bytes;
  if (options.scoring_strategy == ScoringStrategy::kPacked) {
    return ScoringStrategy::kPacked;
  }
  if (options.scoring_strategy == ScoringStrategy::kCube) {
    return eligible ? ScoringStrategy::kCube : ScoringStrategy::kPacked;
  }
  // kAuto. Under the naive kernel the scan path *is* the product being
  // exercised (the reference oracle); silently answering from a cube would
  // defeat --counting_kernel=naive, so auto never substitutes it.
  if (!eligible || options.kernel == CountingKernel::kNaive) {
    return ScoringStrategy::kPacked;
  }
  // Cost model, in rough "word operations". Evaluation census: the
  // admission phase scores every combination of size <= eta once, and each
  // greedy round re-scores every combination against the grown F_i; F_i
  // gains at least one member per round, so rounds <= min(max_parents,
  // |C|) + 1 (the +1 is the final no-improvement round). This
  // overestimates (admission prunes combos, greedy marks subsets used)
  // but overestimates both arms by the same factor, so the comparison
  // survives.
  const uint64_t k = static_cast<uint64_t>(num_candidates);
  const uint32_t eta =
      std::min<uint32_t>(options.max_combination_size, num_candidates);
  uint64_t combos = 0;
  uint64_t binom = 1;
  for (uint32_t s = 1; s <= eta; ++s) {
    binom = binom * (k - s + 1) / s;
    combos += binom;
  }
  const uint64_t rounds =
      std::min<uint64_t>(options.max_parents, num_candidates) + 1;
  const uint64_t evals = combos * (1 + rounds);
  const uint64_t words = (num_processes + 63) / 64;
  // Packed arm: admission via the popcount recursion (2^|W| word-passes
  // over the column words), greedy via the incremental counter (one O(β)
  // byte pass per evaluation — 16 "word ops" per word of 64 processes
  // reflects its byte-granular inner loop).
  const uint64_t packed_cost =
      combos * words * (uint64_t{1} << eta) + combos * rounds * words * 16;
  // Cube arm: one build — a per-candidate word scan (k+6 word ops per word
  // covers the scatter's bit-clear loop plus the live/child popcounts) and
  // a tally touching only the live positions where some candidate is
  // infected (prior: ~0.3 infection density per column, so ~min(1,
  // 0.3·|C|)·β live) — then an O(2^|C|) first-fold-from-cells
  // marginalization per evaluation.
  const uint64_t live_positions = std::min<uint64_t>(
      num_processes, static_cast<uint64_t>(num_processes) * (k * 20) / 64);
  const uint64_t cube_cost = live_positions + words * (k + 6) +
                             evals * (uint64_t{1} << num_candidates);
  return cube_cost < packed_cost ? ScoringStrategy::kCube
                                 : ScoringStrategy::kPacked;
}

namespace {

// Sorted union of a sorted set and a (small) combination.
std::vector<graph::NodeId> SortedUnion(const std::vector<graph::NodeId>& f,
                                       const std::vector<graph::NodeId>& w) {
  std::vector<graph::NodeId> merged = f;
  for (graph::NodeId v : w) {
    auto it = std::lower_bound(merged.begin(), merged.end(), v);
    if (it == merged.end() || *it != v) merged.insert(it, v);
  }
  return merged;
}

bool IsSubsetOf(const std::vector<graph::NodeId>& w,
                const std::vector<graph::NodeId>& sorted_f) {
  for (graph::NodeId v : w) {
    if (!std::binary_search(sorted_f.begin(), sorted_f.end(), v)) return false;
  }
  return true;
}

struct ScoredCombination {
  std::vector<graph::NodeId> members;
  double static_score = 0.0;
};

}  // namespace

ParentSearchResult FindParents(const diffusion::StatusMatrix& statuses,
                               graph::NodeId child,
                               const std::vector<graph::NodeId>& candidates,
                               const ParentSearchOptions& options,
                               const RunContext& context,
                               const PackedStatuses* packed,
                               const CandidateCube* cube) {
  MetricsRegistry* metrics = context.metrics;
  TENDS_TRACE_SPAN(metrics, "parent_search", static_cast<int64_t>(child));
  ParentSearchResult result;
  // Published on every exit path (all three returns go through `done`).
  auto done = [&](const ParentSearchResult& r) {
    TENDS_METRIC_ADD(metrics, "tends.parent_search.calls", 1);
    TENDS_METRIC_ADD(metrics, "tends.parent_search.score_evaluations",
                     r.score_evaluations);
    TENDS_METRIC_ADD(metrics, "tends.parent_search.combinations",
                     r.combinations_considered);
    TENDS_METRIC_RECORD(metrics, "tends.parent_search.parents",
                        r.parents.size());
    TENDS_METRIC_ADD(metrics, "tends.counting.packed_calls",
                     r.packed_count_calls);
    TENDS_METRIC_ADD(metrics, "tends.counting.incremental_hits",
                     r.incremental_count_hits);
  };

  // Counting kernel. The packed kernel works on word-packed columns (built
  // here unless the caller shares a pre-built view) and serves the greedy
  // phase through an incremental counter keyed on the current F_i; both
  // kernels yield bit-identical JointCounts, so everything downstream —
  // scores, admission checks, the inferred network — is kernel-invariant.
  const bool use_cube = cube != nullptr;
  if (use_cube) {
    TENDS_CHECK(cube->child() == child && cube->candidates() == candidates)
        << "cube does not match this (child, candidates) search";
    TENDS_CHECK(cube->num_processes() == statuses.num_processes())
        << "cube covers " << cube->num_processes() << " processes, matrix has "
        << statuses.num_processes();
  }
  const bool use_packed =
      !use_cube && options.kernel == CountingKernel::kPacked;
  std::optional<PackedStatuses> owned_packed;
  if (use_packed && packed == nullptr) {
    owned_packed.emplace(statuses);
    packed = &*owned_packed;
  }
  std::optional<IncrementalJointCounter> incremental;
  if (use_packed) incremental.emplace(*packed, child);
  // Standalone statistics of W (Algorithm 1's candidate admission).
  auto count_standalone = [&](const std::vector<graph::NodeId>& w) {
    ++result.score_evaluations;
    if (use_cube) return cube->Count(w);
    if (use_packed) {
      ++result.packed_count_calls;
      return packed->CountJoint(child, w);
    }
    return CountJoint(statuses, child, w);
  };
  // Statistics of F_i ∪ W during the greedy expansion. `merged` is the
  // sorted union the naive kernel scans; the packed kernel answers from
  // the incremental counter's cached codes for F_i instead, and the cube
  // marginalizes (the union stays within its candidate set by
  // construction).
  auto count_union = [&](const std::vector<graph::NodeId>& members,
                         const std::vector<graph::NodeId>& merged) {
    ++result.score_evaluations;
    if (use_cube) return cube->Count(merged);
    if (use_packed) {
      ++result.packed_count_calls;
      ++result.incremental_count_hits;
      return incremental->Count(members);
    }
    return CountJoint(statuses, child, merged);
  };
  // Re-anchors the incremental counter whenever F_i changes.
  auto set_greedy_base = [&](const std::vector<graph::NodeId>& f) {
    if (use_packed) incremental->SetBase(f);
  };

  const uint32_t beta = statuses.num_processes();
  const uint32_t n2 =
      use_cube ? cube->child_infected_count() : statuses.InfectionCount(child);
  const uint32_t n1 = beta - n2;  // X_i = 0
  result.delta = DeltaI(beta, n1, n2);
  result.empty_score = EmptySetLocalScore(n1, n2);
  result.score =
      options.use_penalty
          ? result.empty_score
          : LogLikelihood(use_cube ? cube->Count({})
                                   : CountJoint(statuses, child, {}));
  if (candidates.empty()) {
    done(result);
    return result;
  }

  // Poll the deadline/cancellation between score evaluations (throttled so
  // the unconstrained fast path never reads the clock).
  StopChecker stop(context);

  // Build C_i: every combination W (|W| <= eta) passing the Theorem-2
  // admission check |W| <= log2(phi_W + delta_i) (Algorithm 1 line 13).
  std::vector<ScoredCombination> combos;
  ForEachCombination(
      candidates, options.max_combination_size,
      [&](const std::vector<graph::NodeId>& w) {
        if (stop.ShouldStop()) return;
        JointCounts counts = count_standalone(w);
        if (!WithinParentBound(w.size(), counts.num_unobserved, result.delta)) {
          return;
        }
        combos.push_back({w, ScoreOf(counts, options)});
      });
  result.combinations_considered = combos.size();
  if (combos.empty()) {
    result.stopped = stop.ShouldStopNow();
    done(result);
    return result;
  }

  std::vector<graph::NodeId> parents;  // F_i, kept sorted

  if (options.greedy_mode == GreedyMode::kStaticAlgorithm1) {
    // Rank once by standalone score; merge in that order while the bound
    // holds (Algorithm 1 lines 16-20, literal reading).
    std::stable_sort(combos.begin(), combos.end(),
                     [](const ScoredCombination& a, const ScoredCombination& b) {
                       return a.static_score > b.static_score;
                     });
    for (const ScoredCombination& c : combos) {
      if (stop.ShouldStop()) break;
      if (IsSubsetOf(c.members, parents)) continue;
      std::vector<graph::NodeId> merged = SortedUnion(parents, c.members);
      if (merged.size() > options.max_parents ||
          merged.size() > kMaxCountableParents) {
        continue;
      }
      JointCounts counts = count_union(c.members, merged);
      if (!WithinParentBound(merged.size(), counts.num_unobserved,
                             result.delta)) {
        continue;
      }
      parents = std::move(merged);
      set_greedy_base(parents);
      result.score = ScoreOf(counts, options);
    }
  } else {
    // Adaptive greedy: each step adopts the W whose union with F_i yields
    // the best recomputed score; stop when nothing improves.
    std::vector<bool> used(combos.size(), false);
    while (!stop.ShouldStopNow()) {
      double best_score = result.score + options.min_improvement;
      int64_t best_index = -1;
      std::vector<graph::NodeId> best_union;
      for (size_t c = 0; c < combos.size(); ++c) {
        if (stop.ShouldStop()) break;
        if (used[c]) continue;
        if (IsSubsetOf(combos[c].members, parents)) {
          used[c] = true;  // union would be a no-op forever
          continue;
        }
        std::vector<graph::NodeId> merged =
            SortedUnion(parents, combos[c].members);
        if (merged.size() > options.max_parents ||
            merged.size() > kMaxCountableParents) {
          continue;
        }
        JointCounts counts = count_union(combos[c].members, merged);
        if (!WithinParentBound(merged.size(), counts.num_unobserved,
                               result.delta)) {
          continue;
        }
        double score = ScoreOf(counts, options);
        if (score > best_score) {
          best_score = score;
          best_index = static_cast<int64_t>(c);
          best_union = std::move(merged);
        }
      }
      if (best_index < 0) break;
      parents = std::move(best_union);
      set_greedy_base(parents);
      result.score = best_score;
      used[static_cast<size_t>(best_index)] = true;
    }
  }

  result.parents = std::move(parents);
  result.stopped = stop.ShouldStopNow();
  done(result);
  return result;
}

}  // namespace tends::inference
