#include "inference/lift.h"

#include <vector>

#include "common/metrics.h"
#include "common/timer.h"
#include "diffusion/cascade.h"
#include "diffusion/validation.h"

namespace tends::inference {

StatusOr<InferredNetwork> Lift::Infer(
    const diffusion::DiffusionObservations& observations,
    const RunContext& context) {
  if (options_.num_edges == 0) {
    return Status::InvalidArgument(
        "LIFT requires the target edge count (the paper supplies the true m)");
  }
  MetricsRegistry* metrics = context.metrics;
  TENDS_METRICS_STAGE(metrics, "lift");
  TENDS_TRACE_SPAN(metrics, "lift_infer");
  Timer timer;
  const auto& cascades = observations.cascades;
  const auto& statuses = observations.statuses;
  TENDS_RETURN_IF_ERROR(
      diffusion::ValidateCascades(cascades, observations.num_nodes()));
  const uint32_t n = observations.num_nodes();
  const uint32_t beta = observations.num_processes();

  // source_count[u] = #processes where u was initially infected.
  // joint[u][v]     = #processes where u was a source and v got infected.
  std::vector<uint32_t> source_count(n, 0);
  std::vector<uint32_t> infected_count(n, 0);
  std::vector<uint32_t> joint(static_cast<size_t>(n) * n, 0);
  for (uint32_t c = 0; c < beta; ++c) {
    const uint8_t* row = statuses.Row(c);
    for (graph::NodeId u : cascades[c].sources) {
      ++source_count[u];
      uint32_t* joint_row = joint.data() + static_cast<size_t>(u) * n;
      for (uint32_t v = 0; v < n; ++v) {
        joint_row[v] += row[v];
      }
    }
    for (uint32_t v = 0; v < n; ++v) infected_count[v] += row[v];
  }

  // Per-source-node deadline check: rows already scored stay in the output.
  StopChecker stop(context);
  const double s = options_.smoothing;
  InferredNetwork network(n);
  for (uint32_t u = 0; u < n; ++u) {
    if (stop.ShouldStop()) break;
    if (source_count[u] == 0) continue;  // no lift estimate possible
    const uint32_t not_source = beta - source_count[u];
    const uint32_t* joint_row = joint.data() + static_cast<size_t>(u) * n;
    for (uint32_t v = 0; v < n; ++v) {
      if (u == v) continue;
      const double p_with =
          (joint_row[v] + s) / (source_count[u] + 2.0 * s);
      const double p_without =
          (infected_count[v] - joint_row[v] + s) / (not_source + 2.0 * s);
      network.AddEdge(u, v, p_with - p_without);
    }
  }
  network.KeepTopM(options_.num_edges);
  TENDS_METRIC_ADD(metrics, "tends.lift.edges_scored", network.num_edges());
  diagnostics_ = {std::string(name()), timer.ElapsedSeconds(),
                  context.ShouldStop()};
  return network;
}

}  // namespace tends::inference
