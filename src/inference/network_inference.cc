#include "inference/network_inference.h"

#include "common/json.h"

namespace tends::inference {

std::string BaselineDiagnostics::ToJson() const {
  JsonWriter writer;
  writer.BeginObject();
  writer.KeyValue("algorithm", algorithm);
  writer.KeyValue("seconds", seconds);
  writer.KeyValue("deadline_expired", deadline_expired);
  writer.EndObject();
  return writer.TakeString();
}

}  // namespace tends::inference
