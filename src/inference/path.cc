#include "inference/path.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/timer.h"
#include "diffusion/cascade.h"

namespace tends::inference {

StatusOr<InferredNetwork> Path::Infer(
    const diffusion::DiffusionObservations& observations,
    const RunContext& context) {
  if (options_.num_edges == 0) {
    return Status::InvalidArgument("PATH requires the target edge count");
  }
  if (options_.trace_length < 2) {
    return Status::InvalidArgument("trace_length must be >= 2");
  }
  const auto& cascades = observations.cascades;
  bool has_infectors = false;
  for (const auto& cascade : cascades) {
    if (cascade.HasInfectors()) {
      has_infectors = true;
      break;
    }
  }
  if (!has_infectors) {
    return Status::FailedPrecondition(
        "PATH requires transmission-path traces, which these observations "
        "do not carry (the approach's practical limitation; see Section "
        "II-B of the paper)");
  }
  const uint32_t n = observations.num_nodes();
  MetricsRegistry* metrics = context.metrics;
  TENDS_METRICS_STAGE(metrics, "path");
  TENDS_TRACE_SPAN(metrics, "path_infer");
  Timer timer;

  // Count pair co-occurrences over the unordered path-connected sets.
  std::vector<std::vector<graph::NodeId>> traces =
      diffusion::ExtractPathTraces(cascades, options_.trace_length);
  TENDS_METRIC_ADD(metrics, "tends.path.traces", traces.size());
  // An already-expired context skips the scan entirely; mid-scan expiry
  // keeps the counts gathered so far, which still rank the pairs.
  StopChecker stop(context);
  std::unordered_map<uint64_t, uint64_t> pair_counts;
  if (!stop.ShouldStopNow()) {
    for (const auto& trace : traces) {
      if (stop.ShouldStop()) break;
      for (size_t a = 0; a < trace.size(); ++a) {
        for (size_t b = a + 1; b < trace.size(); ++b) {
          graph::NodeId lo = std::min(trace[a], trace[b]);
          graph::NodeId hi = std::max(trace[a], trace[b]);
          if (lo == hi) continue;
          ++pair_counts[(static_cast<uint64_t>(lo) << 32) | hi];
        }
      }
    }
  }

  // Most frequently co-occurring pairs become (undirected) edges.
  InferredNetwork network(n);
  for (const auto& [key, count] : pair_counts) {
    graph::NodeId lo = static_cast<graph::NodeId>(key >> 32);
    graph::NodeId hi = static_cast<graph::NodeId>(key & 0xFFFFFFFFu);
    network.AddEdge(lo, hi, static_cast<double>(count));
    network.AddEdge(hi, lo, static_cast<double>(count));
  }
  network.KeepTopM(options_.num_edges);
  diagnostics_ = {std::string(name()), timer.ElapsedSeconds(),
                  context.ShouldStop()};
  return network;
}

}  // namespace tends::inference
