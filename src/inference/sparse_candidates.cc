#include "inference/sparse_candidates.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/parallel.h"
#include "inference/imi.h"

namespace tends::inference {

namespace {

/// Cost-model factor of the per-node strategy choice: one merge step is
/// a scratch increment, one popcount step is an AND+popcount over a word
/// of 64 statuses. The merge wins while the node's total process-list
/// length is below this multiple of the full column scan's word count.
/// Tuning it shifts time only — both strategies produce identical rows.
///
/// When the caller does not pin a factor, it is derived from the measured
/// mean inverted-list occupancy (total set bits / beta — what one merge
/// step's working set looks like). Short lists keep the c11 scratch
/// touching few distinct nodes per process, so each increment is
/// cache-resident and the merge is worth more word scans; occupancy in
/// the thousands makes every increment a near-random access over an
/// n-sized array, which is where the n=5000 sparse build was observed
/// losing to the dense pipeline (EXPERIMENTS.md, "Sparse candidate
/// generation at scale") — hence the factor steps down as lists grow.
uint64_t ResolveMergeCostFactor(const SparseCandidateOptions& options,
                                const InvertedStatusIndex& inverted,
                                uint32_t beta) {
  if (options.merge_cost_factor != 0) return options.merge_cost_factor;
  if (beta == 0) return 2;
  uint64_t total = 0;
  for (uint32_t p = 0; p < beta; ++p) total += inverted.Size(p);
  const uint64_t mean_occupancy = total / beta;
  if (mean_occupancy <= 256) return 4;
  if (mean_occupancy <= 4096) return 2;
  return 1;
}

/// Per-worker scratch of the merge path: a c11 accumulator indexed by
/// node id plus the list of touched ids (reset after every row, so the
/// array is all-zero between rows). thread_local because ParallelFor
/// runs chunks on the long-lived shared pool workers and the caller.
struct MergeScratch {
  std::vector<uint32_t> c11;
  std::vector<uint32_t> touched;
};

MergeScratch& LocalScratch(uint32_t n) {
  thread_local MergeScratch scratch;
  if (scratch.c11.size() < n) scratch.c11.assign(n, 0);
  return scratch;
}

}  // namespace

double SparseCandidateIndex::Get(graph::NodeId i, graph::NodeId j) const {
  const RowView row = Row(i);
  const uint32_t* begin = row.neighbors;
  const uint32_t* end = row.neighbors + row.size;
  const uint32_t* it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return 0.0;
  return row.values[it - begin];
}

std::vector<double> SparseCandidateIndex::PositiveUpperTriangleValues() const {
  std::vector<double> out;
  out.reserve(num_entries() / 2);
  for (uint32_t i = 0; i < num_nodes_; ++i) {
    const RowView row = Row(i);
    // Rows are ascending by neighbor, so the j > i suffix starts at the
    // first neighbor greater than i.
    const uint32_t* begin = row.neighbors;
    const uint32_t* end = row.neighbors + row.size;
    const uint32_t* it = std::upper_bound(begin, end, i);
    for (; it != end; ++it) out.push_back(row.values[it - begin]);
  }
  return out;
}

void CooccurrenceCounts::Append(const CooccurrenceCounts& chunk) {
  TENDS_CHECK(chunk.num_nodes_ == num_nodes_)
      << "appended chunk covers " << chunk.num_nodes_
      << " nodes, co-occurrence table covers " << num_nodes_;
  std::vector<uint64_t> offsets(static_cast<size_t>(num_nodes_) + 1, 0);
  std::vector<uint32_t> neighbors, counts;
  neighbors.reserve(neighbors_.size() + chunk.neighbors_.size());
  counts.reserve(counts_.size() + chunk.counts_.size());
  for (uint32_t i = 0; i < num_nodes_; ++i) {
    const RowView a = Row(i);
    const RowView b = chunk.Row(i);
    size_t x = 0, y = 0;
    while (x < a.size || y < b.size) {
      if (y == b.size || (x < a.size && a.neighbors[x] < b.neighbors[y])) {
        neighbors.push_back(a.neighbors[x]);
        counts.push_back(a.counts[x]);
        ++x;
      } else if (x == a.size || b.neighbors[y] < a.neighbors[x]) {
        neighbors.push_back(b.neighbors[y]);
        counts.push_back(b.counts[y]);
        ++y;
      } else {
        neighbors.push_back(a.neighbors[x]);
        counts.push_back(a.counts[x] + b.counts[y]);
        ++x;
        ++y;
      }
    }
    offsets[i + 1] = neighbors.size();
  }
  offsets_ = std::move(offsets);
  neighbors_ = std::move(neighbors);
  counts_ = std::move(counts);
  num_processes_ += chunk.num_processes_;
  // Entry counts are exact for the merged table; the strategy-row tallies
  // just accumulate (which build path produced which chunk's rows is a
  // diagnostic, not part of the differential contract).
  stats_.pairs_visited = neighbors_.size();
  stats_.pairs_skipped =
      static_cast<uint64_t>(num_nodes_) * (num_nodes_ - 1) - neighbors_.size();
  stats_.merge_rows += chunk.stats_.merge_rows;
  stats_.popcount_rows += chunk.stats_.popcount_rows;
}

CooccurrenceCounts BuildCooccurrenceCounts(const PackedStatuses& packed,
                                           const SparseCandidateOptions& options,
                                           MetricsRegistry* metrics) {
  const uint32_t n = packed.num_nodes();
  const uint32_t words = packed.words_per_node();

  TENDS_METRICS_STAGE(metrics, "sparse_index");
  TENDS_TRACE_SPAN(metrics, "sparse_index");

  // The inverted-index build is a separate span from the per-row pass so a
  // trace timeline shows where a slow sparse build actually spends its
  // time (the instrumentation that attributed the n=5000 anomaly).
  std::optional<InvertedStatusIndex> inverted_storage;
  {
    TENDS_TRACE_SPAN(metrics, "sparse_inverted_index");
    inverted_storage.emplace(packed);
  }
  const InvertedStatusIndex& inverted = *inverted_storage;
  TENDS_GAUGE_SET(metrics, "tends.mem.sparse_inverted_index_bytes",
                  inverted.ByteSize());
  const uint64_t merge_cost_factor =
      ResolveMergeCostFactor(options, inverted, packed.num_processes());
  TENDS_GAUGE_SET(metrics, "tends.counting.sparse_merge_cost_factor",
                  merge_cost_factor);

  // Per-node rows are built independently (deterministic content per row,
  // so the assembled table is byte-identical for any thread count), then
  // flattened into the CSR arrays.
  std::vector<std::vector<uint32_t>> row_neighbors(n);
  std::vector<std::vector<uint32_t>> row_counts(n);
  std::atomic<uint64_t> visited{0}, skipped{0};
  std::atomic<uint32_t> merge_rows{0}, popcount_rows{0};

  ParallelForOptions parallel;
  parallel.num_threads = options.num_threads;
  parallel.grain = 16;
  TENDS_TRACE_SPAN(metrics, "sparse_rows");
  ParallelFor(parallel, 0, n, [&](uint32_t i) {
    // The processes node i participates in, from its packed column.
    const uint64_t* col = packed.Column(i);
    uint64_t merge_cost = 0;
    {
      for (uint32_t w = 0; w < words; ++w) {
        uint64_t word = col[w];
        while (word != 0) {
          merge_cost += inverted.Size(w * 64 + std::countr_zero(word));
          word &= word - 1;
        }
      }
    }
    const uint64_t popcount_cost = static_cast<uint64_t>(n) * words;
    bool use_merge = merge_cost <= merge_cost_factor * popcount_cost;
    if (options.strategy == SparseRowStrategy::kMergeOnly) use_merge = true;
    if (options.strategy == SparseRowStrategy::kPopcountOnly) {
      use_merge = false;
    }

    std::vector<uint32_t>& neighbors = row_neighbors[i];
    std::vector<uint32_t>& pair_counts = row_counts[i];
    uint64_t row_visited = 0;

    if (use_merge) {
      merge_rows.fetch_add(1, std::memory_order_relaxed);
      MergeScratch& scratch = LocalScratch(n);
      for (uint32_t w = 0; w < words; ++w) {
        uint64_t word = col[w];
        while (word != 0) {
          const uint32_t p = w * 64 + std::countr_zero(word);
          word &= word - 1;
          const uint32_t* nodes = inverted.Nodes(p);
          const uint32_t size = inverted.Size(p);
          for (uint32_t e = 0; e < size; ++e) {
            const uint32_t j = nodes[e];
            if (scratch.c11[j]++ == 0) scratch.touched.push_back(j);
          }
        }
      }
      // Ascending-id emission, matching the popcount path exactly.
      std::sort(scratch.touched.begin(), scratch.touched.end());
      for (uint32_t j : scratch.touched) {
        if (j == i) continue;
        ++row_visited;
        neighbors.push_back(j);
        pair_counts.push_back(scratch.c11[j]);
      }
      for (uint32_t j : scratch.touched) scratch.c11[j] = 0;
      scratch.touched.clear();
    } else {
      popcount_rows.fetch_add(1, std::memory_order_relaxed);
      for (uint32_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const uint64_t* other = packed.Column(j);
        uint32_t c11 = 0;
        for (uint32_t w = 0; w < words; ++w) {
          c11 += static_cast<uint32_t>(std::popcount(col[w] & other[w]));
        }
        // Early-out on zero co-infection: no entry stored.
        if (c11 == 0) continue;
        ++row_visited;
        neighbors.push_back(j);
        pair_counts.push_back(c11);
      }
    }
    visited.fetch_add(row_visited, std::memory_order_relaxed);
    skipped.fetch_add(n - 1 - row_visited, std::memory_order_relaxed);
  });

  CooccurrenceCounts table;
  table.num_nodes_ = n;
  table.num_processes_ = packed.num_processes();
  table.offsets_.assign(static_cast<size_t>(n) + 1, 0);
  for (uint32_t i = 0; i < n; ++i) {
    table.offsets_[i + 1] = table.offsets_[i] + row_neighbors[i].size();
  }
  table.neighbors_.reserve(table.offsets_[n]);
  table.counts_.reserve(table.offsets_[n]);
  for (uint32_t i = 0; i < n; ++i) {
    table.neighbors_.insert(table.neighbors_.end(), row_neighbors[i].begin(),
                            row_neighbors[i].end());
    table.counts_.insert(table.counts_.end(), row_counts[i].begin(),
                         row_counts[i].end());
  }
  table.stats_.pairs_visited = visited.load(std::memory_order_relaxed);
  table.stats_.pairs_skipped = skipped.load(std::memory_order_relaxed);
  table.stats_.merge_rows = merge_rows.load(std::memory_order_relaxed);
  table.stats_.popcount_rows = popcount_rows.load(std::memory_order_relaxed);
  TENDS_GAUGE_SET(metrics, "tends.mem.cooccurrence_bytes", table.ByteSize());
  return table;
}

SparseCandidateIndex DeriveSparseCandidateIndex(
    const CooccurrenceCounts& cooccurrence,
    const std::vector<uint32_t>& marginals, MetricsRegistry* metrics) {
  const uint32_t n = cooccurrence.num_nodes();
  const uint32_t beta = cooccurrence.num_processes();
  TENDS_TRACE_SPAN(metrics, "sparse_derive");
  TENDS_CHECK(marginals.size() == n)
      << "marginals size " << marginals.size() << " != num_nodes " << n;

  SparseCandidateIndex index;
  index.num_nodes_ = n;
  index.num_processes_ = beta;
  index.offsets_.assign(static_cast<size_t>(n) + 1, 0);
  index.neighbors_.reserve(cooccurrence.num_entries());
  index.values_.reserve(cooccurrence.num_entries());
  for (uint32_t i = 0; i < n; ++i) {
    const CooccurrenceCounts::RowView row = cooccurrence.Row(i);
    for (size_t e = 0; e < row.size; ++e) {
      const uint32_t j = row.neighbors[e];
      const uint32_t lo = std::min(i, j), hi = std::max(i, j);
      const double value = InfectionMiFromCoInfection(
          row.counts[e], marginals[lo], marginals[hi], beta);
      if (value > 0.0) {
        index.neighbors_.push_back(j);
        index.values_.push_back(value);
      }
    }
    index.offsets_[i + 1] = index.neighbors_.size();
  }
  index.stats_ = cooccurrence.stats();

  TENDS_GAUGE_SET(metrics, "tends.mem.sparse_index_bytes", index.ByteSize());
  TENDS_METRIC_ADD(metrics, "tends.counting.pairs_visited",
                   index.stats_.pairs_visited);
  TENDS_METRIC_ADD(metrics, "tends.counting.pairs_skipped",
                   index.stats_.pairs_skipped);
  TENDS_METRIC_ADD(metrics, "tends.counting.sparse_merge_rows",
                   index.stats_.merge_rows);
  TENDS_METRIC_ADD(metrics, "tends.counting.sparse_popcount_rows",
                   index.stats_.popcount_rows);
  return index;
}

SparseCandidateIndex BuildSparseCandidateIndex(
    const PackedStatuses& packed, const std::vector<uint32_t>& marginals,
    const SparseCandidateOptions& options, MetricsRegistry* metrics) {
  return DeriveSparseCandidateIndex(
      BuildCooccurrenceCounts(packed, options, metrics), marginals, metrics);
}

void TopKCandidateHeap::Push(double value, graph::NodeId id) {
  if (k_ == 0) return;
  const std::pair<double, graph::NodeId> entry(value, id);
  if (entries_.size() < k_) {
    entries_.push_back(entry);
    std::push_heap(entries_.begin(), entries_.end(), Better);
    return;
  }
  // Full: evict the current worst only for a strictly better candidate
  // (ties rank by id, so the order is total and the kept set unique).
  if (!Better(entry, entries_.front())) return;
  std::pop_heap(entries_.begin(), entries_.end(), Better);
  entries_.back() = entry;
  std::push_heap(entries_.begin(), entries_.end(), Better);
}

std::vector<graph::NodeId> TopKCandidateHeap::SortedIds() const {
  std::vector<graph::NodeId> ids;
  ids.reserve(entries_.size());
  for (const auto& [value, id] : entries_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace tends::inference
