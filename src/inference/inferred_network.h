#ifndef TENDS_INFERENCE_INFERRED_NETWORK_H_
#define TENDS_INFERENCE_INFERRED_NETWORK_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "graph/graph.h"

namespace tends::inference {

/// A directed edge proposed by an inference algorithm, with an optional
/// confidence weight (higher = more confident; algorithms that do not
/// produce weights leave them at 1).
struct ScoredEdge {
  graph::Edge edge;
  double weight = 1.0;
};

/// Output of a network-inference algorithm: a set of directed edges over a
/// fixed node set.
class InferredNetwork {
 public:
  explicit InferredNetwork(uint32_t num_nodes = 0) : num_nodes_(num_nodes) {}

  uint32_t num_nodes() const { return num_nodes_; }
  const std::vector<ScoredEdge>& edges() const { return edges_; }
  size_t num_edges() const { return edges_.size(); }

  void AddEdge(graph::NodeId from, graph::NodeId to, double weight = 1.0) {
    edges_.push_back({{from, to}, weight});
  }

  /// Keeps only the `m` highest-weight edges (ties broken by (from, to)
  /// order for determinism). Used by algorithms that are given the true
  /// edge count, and by NetRate's threshold sweep.
  void KeepTopM(size_t m);

  /// Drops edges with weight below `threshold`.
  void KeepAboveThreshold(double threshold);

  /// Materializes as a DirectedGraph (drops weights). Fails on duplicate
  /// edges or self-loops, which indicate an algorithm bug.
  StatusOr<graph::DirectedGraph> ToGraph() const;

  std::string DebugString() const;

 private:
  uint32_t num_nodes_;
  std::vector<ScoredEdge> edges_;
};

}  // namespace tends::inference

#endif  // TENDS_INFERENCE_INFERRED_NETWORK_H_
