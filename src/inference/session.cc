#include "inference/session.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/stringutil.h"
#include "common/timer.h"
#include "diffusion/validation.h"

namespace tends::inference {

namespace internal {

SessionGeneration::SessionGeneration(diffusion::StatusMatrix statuses,
                                     uint64_t epoch)
    : statuses_(std::move(statuses)), epoch_(epoch) {}

template <typename T, typename Init>
const T& SessionGeneration::Memoize(const Memo<T>& memo,
                                    MetricsRegistry* metrics,
                                    Init&& init) const {
  bool computed = false;
  std::call_once(memo.once, [&] {
    memo.value.emplace(init());
    memo.ready.store(true, std::memory_order_release);
    computed = true;
  });
  // Losers of a first-computation race blocked in call_once until the
  // winner finished; they (and every later caller) count as hits.
  if (computed) {
    TENDS_METRIC_ADD(metrics, "tends.session.artifact_misses", 1);
  } else {
    TENDS_METRIC_ADD(metrics, "tends.session.artifact_hits", 1);
  }
  return *memo.value;
}

const PackedStatuses& SessionGeneration::packed(
    const ArtifactContext& context) const {
  MetricsRegistry* metrics = context.metrics;
  return Memoize(packed_, metrics, [&] {
    TENDS_METRICS_STAGE(metrics, "pack_statuses");
    PackedStatuses packed(statuses_);
    TENDS_GAUGE_SET(metrics, "tends.mem.packed_statuses_bytes",
                    packed.ByteSize());
    return packed;
  });
}

const std::vector<uint32_t>& SessionGeneration::marginal_counts(
    const ArtifactContext& context) const {
  MetricsRegistry* metrics = context.metrics;
  return Memoize(marginal_counts_, metrics, [&] {
    std::vector<uint32_t> counts = packed(context).InfectedCounts();
    TENDS_GAUGE_SET(metrics, "tends.mem.marginal_counts_bytes",
                    counts.size() * sizeof(uint32_t));
    return counts;
  });
}

const std::vector<PairCounts>& SessionGeneration::pair_counts(
    const ArtifactContext& context) const {
  MetricsRegistry* metrics = context.metrics;
  return Memoize(pair_counts_, metrics, [&] {
    // Dependencies are triggered before the stage opens so their cost is
    // attributed to their own stage names, as in a fresh run.
    const PackedStatuses& packed_columns = packed(context);
    TENDS_METRICS_STAGE(metrics, "imi");
    std::vector<PairCounts> counts =
        ComputePairCountsUpperTriangle(packed_columns);
    TENDS_GAUGE_SET(metrics, "tends.mem.pair_counts_bytes",
                    counts.size() * sizeof(PairCounts));
    return counts;
  });
}

const ImiMatrix& SessionGeneration::imi(MiVariant variant,
                                        const ArtifactContext& context) const {
  MetricsRegistry* metrics = context.metrics;
  const Memo<ImiMatrix>& memo =
      IsTraditionalMi(variant) ? imi_traditional_ : imi_infection_;
  return Memoize(memo, metrics, [&] {
    const std::vector<PairCounts>& counts = pair_counts(context);
    TENDS_METRICS_STAGE(metrics, "imi");
    TENDS_TRACE_SPAN(metrics, "imi");
    TENDS_METRIC_ADD(metrics, "tends.imi.pairs", counts.size());
    ImiMatrix matrix(num_nodes(), counts, variant);
    // Both variants have identical dense n*n footprints, so last-write-wins
    // is exact whichever variant(s) a session materializes.
    TENDS_GAUGE_SET(metrics, "tends.mem.imi_matrix_bytes", matrix.ByteSize());
    return matrix;
  });
}

const ImiThreshold& SessionGeneration::base_threshold(
    MiVariant variant, const ArtifactContext& context) const {
  MetricsRegistry* metrics = context.metrics;
  const Memo<ImiThreshold>& memo =
      IsTraditionalMi(variant) ? threshold_traditional_ : threshold_infection_;
  return Memoize(memo, metrics, [&] {
    const ImiMatrix& matrix = imi(variant, context);
    TENDS_METRICS_STAGE(metrics, "kmeans");
    TENDS_TRACE_SPAN(metrics, "kmeans");
    ImiThreshold threshold = FindImiThreshold(matrix);
    TENDS_METRIC_ADD(metrics, "tends.kmeans.iterations", threshold.iterations);
    return threshold;
  });
}

const CooccurrenceCounts& SessionGeneration::cooccurrence(
    const ArtifactContext& context) const {
  MetricsRegistry* metrics = context.metrics;
  return Memoize(cooccurrence_, metrics, [&] {
    const PackedStatuses& packed_columns = packed(context);
    SparseCandidateOptions options;
    options.num_threads = context.num_threads;
    return BuildCooccurrenceCounts(packed_columns, options, metrics);
  });
}

const SparseCandidateIndex& SessionGeneration::sparse_candidates(
    const ArtifactContext& context) const {
  MetricsRegistry* metrics = context.metrics;
  return Memoize(sparse_candidates_, metrics, [&] {
    const CooccurrenceCounts& counts = cooccurrence(context);
    const std::vector<uint32_t>& marginals = marginal_counts(context);
    return DeriveSparseCandidateIndex(counts, marginals, metrics);
  });
}

const ImiThreshold& SessionGeneration::sparse_base_threshold(
    const ArtifactContext& context) const {
  MetricsRegistry* metrics = context.metrics;
  return Memoize(threshold_sparse_, metrics, [&] {
    const SparseCandidateIndex& index = sparse_candidates(context);
    TENDS_METRICS_STAGE(metrics, "kmeans");
    TENDS_TRACE_SPAN(metrics, "kmeans");
    ImiThreshold threshold = FindImiThreshold(index);
    TENDS_METRIC_ADD(metrics, "tends.kmeans.iterations", threshold.iterations);
    return threshold;
  });
}

namespace {

/// Resolves the artifact set a run's options need against one generation,
/// in the exact dependency-triggering order the session has always used
/// (packed, then the candidate artifact, then the threshold) — the order
/// the hit/miss-counter assertions of the session suite pin.
TendsArtifacts ResolveArtifacts(const SessionGeneration& generation,
                                const TendsOptions& options,
                                MetricsRegistry* metrics) {
  const ArtifactContext context{metrics, options.num_threads};
  TendsArtifacts artifacts;
  artifacts.statuses = &generation.statuses();
  artifacts.packed = &generation.packed(context);
  const bool sparse_mode = options.candidate_mode == CandidateMode::kSparse;
  if (sparse_mode) {
    artifacts.sparse = &generation.sparse_candidates(context);
  } else {
    artifacts.imi = &generation.imi(options.ResolvedMiVariant(), context);
  }
  if (options.tau_override.has_value()) {
    artifacts.tau = *options.tau_override;
  } else {
    const ImiThreshold& threshold =
        sparse_mode
            ? generation.sparse_base_threshold(context)
            : generation.base_threshold(options.ResolvedMiVariant(), context);
    artifacts.tau = threshold.tau * options.tau_multiplier;
    artifacts.kmeans_iterations = threshold.iterations;
  }
  return artifacts;
}

StatusOr<SessionRun> RunOnGeneration(const SessionGeneration& generation,
                                     const TendsOptions& options,
                                     const RunContext& context) {
  const uint32_t n = generation.num_nodes();
  MetricsRegistry* metrics = context.metrics;
  TENDS_TRACE_SPAN(metrics, "session_run");
  TENDS_RETURN_IF_ERROR(diffusion::ValidateStatusMatrix(
      generation.statuses(), options.reject_degenerate_columns));
  TENDS_RETURN_IF_ERROR(options.Validate());
#if TENDS_METRICS_ENABLED
  if (metrics != nullptr) {
    metrics->GetGauge("tends.tends.nodes_total").Set(n);
    metrics->GetGauge("tends.tends.processes")
        .Set(generation.num_processes());
    metrics->GetGauge("tends.mem.status_matrix_bytes")
        .Set(static_cast<int64_t>(generation.statuses().ByteSize()));
  }
#endif

  SessionRun run;
  // Deadline already blown before any work: same contract as a fresh
  // Tends::Infer — the empty network over n nodes, flagged as expired.
  if (context.ShouldStop()) {
    run.network = InferredNetwork(n);
    run.diagnostics.deadline_expired = true;
    TENDS_METRIC_ADD(metrics, "tends.tends.deadline_expired", 1);
    return run;
  }

  TendsArtifacts artifacts = ResolveArtifacts(generation, options, metrics);
  TENDS_ASSIGN_OR_RETURN(
      run.network,
      RunTendsNodeLoop(artifacts, options, context, &run.diagnostics));
  return run;
}

}  // namespace

}  // namespace internal

uint64_t SessionView::epoch() const { return generation_->epoch(); }

const diffusion::StatusMatrix& SessionView::statuses() const {
  return generation_->statuses();
}

uint32_t SessionView::num_nodes() const { return generation_->num_nodes(); }

uint32_t SessionView::num_processes() const {
  return generation_->num_processes();
}

const PackedStatuses& SessionView::packed(
    const ArtifactContext& context) const {
  return generation_->packed(context);
}

const std::vector<uint32_t>& SessionView::marginal_counts(
    const ArtifactContext& context) const {
  return generation_->marginal_counts(context);
}

const std::vector<PairCounts>& SessionView::pair_counts(
    const ArtifactContext& context) const {
  return generation_->pair_counts(context);
}

const ImiMatrix& SessionView::imi(MiVariant variant,
                                  const ArtifactContext& context) const {
  return generation_->imi(variant, context);
}

const ImiThreshold& SessionView::base_threshold(
    MiVariant variant, const ArtifactContext& context) const {
  return generation_->base_threshold(variant, context);
}

const CooccurrenceCounts& SessionView::cooccurrence(
    const ArtifactContext& context) const {
  return generation_->cooccurrence(context);
}

const SparseCandidateIndex& SessionView::sparse_candidates(
    const ArtifactContext& context) const {
  return generation_->sparse_candidates(context);
}

const ImiThreshold& SessionView::sparse_base_threshold(
    const ArtifactContext& context) const {
  return generation_->sparse_base_threshold(context);
}

StatusOr<SessionRun> SessionView::Run(const TendsOptions& options,
                                      const RunContext& context) const {
  return internal::RunOnGeneration(*generation_, options, context);
}

InferenceSession::InferenceSession(diffusion::StatusMatrix statuses)
    : generation_(std::make_shared<internal::SessionGeneration>(
          std::move(statuses), /*epoch=*/0)) {}

InferenceSession::InferenceSession(diffusion::StatusMatrix statuses,
                                   PackedStatuses packed) {
  TENDS_CHECK(packed.num_processes() == statuses.num_processes() &&
              packed.num_nodes() == statuses.num_nodes())
      << "pre-packed statuses shape (" << packed.num_processes() << " x "
      << packed.num_nodes() << ") does not match the status matrix ("
      << statuses.num_processes() << " x " << statuses.num_nodes() << ")";
  auto generation = std::make_shared<internal::SessionGeneration>(
      std::move(statuses), /*epoch=*/0);
  internal::SessionGeneration::Seed(generation->packed_, std::move(packed));
  generation_ = std::move(generation);
}

std::shared_ptr<const internal::SessionGeneration> InferenceSession::current()
    const {
  std::lock_guard<std::mutex> lock(generation_mutex_);
  return generation_;
}

const diffusion::StatusMatrix& InferenceSession::statuses() const {
  return current()->statuses();
}

uint32_t InferenceSession::num_nodes() const { return current()->num_nodes(); }

uint32_t InferenceSession::num_processes() const {
  return current()->num_processes();
}

uint64_t InferenceSession::epoch() const { return current()->epoch(); }

SessionView InferenceSession::Snapshot() const {
  return SessionView(current());
}

Status InferenceSession::AppendStatuses(const diffusion::StatusMatrix& chunk,
                                        const ArtifactContext& context) {
  return AppendImpl(chunk, nullptr, context);
}

Status InferenceSession::AppendPacked(const diffusion::StatusMatrix& chunk,
                                      PackedStatuses chunk_packed,
                                      const ArtifactContext& context) {
  if (chunk_packed.num_processes() != chunk.num_processes() ||
      chunk_packed.num_nodes() != chunk.num_nodes()) {
    return Status::InvalidArgument(StrFormat(
        "pre-packed chunk shape (%u x %u) does not match the chunk "
        "(%u x %u)",
        chunk_packed.num_processes(), chunk_packed.num_nodes(),
        chunk.num_processes(), chunk.num_nodes()));
  }
  return AppendImpl(chunk, &chunk_packed, context);
}

Status InferenceSession::AppendImpl(const diffusion::StatusMatrix& chunk,
                                    const PackedStatuses* pre_packed,
                                    const ArtifactContext& context) {
  MetricsRegistry* metrics = context.metrics;
  TENDS_TRACE_SPAN(metrics, "session_append");
  Timer timer;
  if (chunk.num_processes() == 0) {
    return Status::InvalidArgument(
        "append chunk carries no processes (an empty append would burn an "
        "epoch for nothing)");
  }
  std::lock_guard<std::mutex> append_lock(append_mutex_);
  std::shared_ptr<const internal::SessionGeneration> old = current();
  if (chunk.num_nodes() != old->num_nodes()) {
    return Status::InvalidArgument(StrFormat(
        "append chunk covers %u nodes, session covers %u",
        chunk.num_nodes(), old->num_nodes()));
  }

  // The successor generation: concatenated observations, epoch + 1.
  diffusion::StatusMatrix next_statuses = old->statuses();
  next_statuses.AppendRows(chunk);
  auto next = std::make_shared<internal::SessionGeneration>(
      std::move(next_statuses), old->epoch() + 1);

  // The chunk transpose, packed at most once and only if some delta below
  // needs it (callers with a pre-packed chunk never pay it at all).
  std::optional<PackedStatuses> chunk_packed_storage;
  auto chunk_packed = [&]() -> const PackedStatuses& {
    if (pre_packed != nullptr) return *pre_packed;
    if (!chunk_packed_storage.has_value()) chunk_packed_storage.emplace(chunk);
    return *chunk_packed_storage;
  };

  // Delta-update every artifact the predecessor materialized; the rest
  // stay lazy in the successor. Each delta is integer-exact or re-derived
  // through the same canonical constructor a cold build uses, so every
  // seeded artifact is byte-identical to recomputing it from the
  // concatenated matrix (pinned by the append differential suite). The
  // Ready() checks are racy against an in-flight first computation on the
  // old generation by design: a mid-flight artifact reads as absent and
  // the successor simply recomputes it lazily.
  using Generation = internal::SessionGeneration;
  if (old->packed_.Ready()) {
    TENDS_METRICS_STAGE(metrics, "pack_statuses");
    PackedStatuses next_packed = *old->packed_.value;
    next_packed.Append(chunk_packed());
    TENDS_GAUGE_SET(metrics, "tends.mem.packed_statuses_bytes",
                    next_packed.ByteSize());
    Generation::Seed(next->packed_, std::move(next_packed));
  }
  if (old->marginal_counts_.Ready()) {
    std::vector<uint32_t> marginals = *old->marginal_counts_.value;
    const std::vector<uint32_t> chunk_marginals =
        chunk_packed().InfectedCounts();
    for (size_t v = 0; v < marginals.size(); ++v) {
      marginals[v] += chunk_marginals[v];
    }
    Generation::Seed(next->marginal_counts_, std::move(marginals));
  }
  if (old->pair_counts_.Ready()) {
    // All four cells of a pair's 2x2 table are plain sums over disjoint
    // process ranges, so the tables add fieldwise.
    TENDS_METRICS_STAGE(metrics, "imi");
    std::vector<PairCounts> table = *old->pair_counts_.value;
    const std::vector<PairCounts> chunk_table =
        ComputePairCountsUpperTriangle(chunk_packed());
    TENDS_CHECK(chunk_table.size() == table.size());
    for (size_t e = 0; e < table.size(); ++e) {
      table[e].c00 += chunk_table[e].c00;
      table[e].c01 += chunk_table[e].c01;
      table[e].c10 += chunk_table[e].c10;
      table[e].c11 += chunk_table[e].c11;
    }
    Generation::Seed(next->pair_counts_, std::move(table));
  }
  // MI matrices re-derive from the updated table through the canonical
  // constructor (all ImiMatrix constructors funnel into it, so the floats
  // come out bit-identical to a cold build). They need the successor's
  // seeded table: gating on next->pair_counts_ (private to this thread
  // until the swap) rather than re-reading old->pair_counts_.Ready()
  // closes the window where a concurrent cold build finished the table
  // after our load above but its matrix reads as ready below.
  for (MiVariant variant : {MiVariant::kInfection, MiVariant::kTraditional}) {
    if (!next->pair_counts_.Ready()) break;
    const auto& old_memo = IsTraditionalMi(variant) ? old->imi_traditional_
                                                    : old->imi_infection_;
    if (!old_memo.Ready()) continue;
    TENDS_METRICS_STAGE(metrics, "imi");
    TENDS_TRACE_SPAN(metrics, "imi");
    const auto& next_memo = IsTraditionalMi(variant) ? next->imi_traditional_
                                                     : next->imi_infection_;
    TENDS_METRIC_ADD(metrics, "tends.imi.pairs", next->pair_counts_.value->size());
    ImiMatrix matrix(next->num_nodes(), *next->pair_counts_.value, variant);
    TENDS_GAUGE_SET(metrics, "tends.mem.imi_matrix_bytes", matrix.ByteSize());
    Generation::Seed(next_memo, std::move(matrix));

    const auto& old_threshold = IsTraditionalMi(variant)
                                    ? old->threshold_traditional_
                                    : old->threshold_infection_;
    if (!old_threshold.Ready()) continue;
    const auto& next_threshold = IsTraditionalMi(variant)
                                     ? next->threshold_traditional_
                                     : next->threshold_infection_;
    TENDS_METRICS_STAGE(metrics, "kmeans");
    TENDS_TRACE_SPAN(metrics, "kmeans");
    ImiThreshold threshold =
        FindImiThreshold(*next_memo.value);
    TENDS_METRIC_ADD(metrics, "tends.kmeans.iterations", threshold.iterations);
    Generation::Seed(next_threshold, threshold);
  }
  if (old->cooccurrence_.Ready()) {
    // Integer co-infection counts merge exactly; the chunk's own table is
    // built over just the appended processes.
    CooccurrenceCounts merged = *old->cooccurrence_.value;
    SparseCandidateOptions sparse_options;
    sparse_options.num_threads = context.num_threads;
    merged.Append(
        BuildCooccurrenceCounts(chunk_packed(), sparse_options, metrics));
    TENDS_GAUGE_SET(metrics, "tends.mem.cooccurrence_bytes",
                    merged.ByteSize());
    Generation::Seed(next->cooccurrence_, std::move(merged));

    if (old->sparse_candidates_.Ready() && next->marginal_counts_.Ready()) {
      // The index is a pure function of (counts, marginals, beta): one
      // O(nnz) re-derivation, never an O(n * beta) rebuild.
      Generation::Seed(
          next->sparse_candidates_,
          DeriveSparseCandidateIndex(*next->cooccurrence_.value,
                                     *next->marginal_counts_.value, metrics));
      if (old->threshold_sparse_.Ready()) {
        TENDS_METRICS_STAGE(metrics, "kmeans");
        TENDS_TRACE_SPAN(metrics, "kmeans");
        ImiThreshold threshold =
            FindImiThreshold(*next->sparse_candidates_.value);
        TENDS_METRIC_ADD(metrics, "tends.kmeans.iterations",
                         threshold.iterations);
        Generation::Seed(next->threshold_sparse_, threshold);
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(generation_mutex_);
    generation_ = std::move(next);
  }
  TENDS_METRIC_ADD(metrics, "tends.session.appends", 1);
  TENDS_METRIC_ADD(metrics, "tends.session.append_processes",
                   chunk.num_processes());
  TENDS_METRIC_RECORD(metrics, "tends.session.append_ns",
                      static_cast<uint64_t>(timer.ElapsedSeconds() * 1e9));
  return Status::OK();
}

StatusOr<SessionRun> InferenceSession::Run(const TendsOptions& options,
                                           const RunContext& context) const {
  // Pin the generation for the whole run so a concurrent append can never
  // mix observations (or free artifacts) mid-inference.
  std::shared_ptr<const internal::SessionGeneration> generation = current();
  return internal::RunOnGeneration(*generation, options, context);
}

const PackedStatuses& InferenceSession::packed(
    const ArtifactContext& context) const {
  return current()->packed(context);
}

const std::vector<uint32_t>& InferenceSession::marginal_counts(
    const ArtifactContext& context) const {
  return current()->marginal_counts(context);
}

const std::vector<PairCounts>& InferenceSession::pair_counts(
    const ArtifactContext& context) const {
  return current()->pair_counts(context);
}

const ImiMatrix& InferenceSession::imi(MiVariant variant,
                                       const ArtifactContext& context) const {
  return current()->imi(variant, context);
}

const ImiThreshold& InferenceSession::base_threshold(
    MiVariant variant, const ArtifactContext& context) const {
  return current()->base_threshold(variant, context);
}

const CooccurrenceCounts& InferenceSession::cooccurrence(
    const ArtifactContext& context) const {
  return current()->cooccurrence(context);
}

const SparseCandidateIndex& InferenceSession::sparse_candidates(
    const ArtifactContext& context) const {
  return current()->sparse_candidates(context);
}

const ImiThreshold& InferenceSession::sparse_base_threshold(
    const ArtifactContext& context) const {
  return current()->sparse_base_threshold(context);
}

// Deprecated positional/bool overloads: pure forwarders into the
// ArtifactContext surface, kept source-compatible for one release.

const PackedStatuses& InferenceSession::packed(MetricsRegistry* metrics) const {
  return packed(ArtifactContext{metrics});
}

const std::vector<uint32_t>& InferenceSession::marginal_counts(
    MetricsRegistry* metrics) const {
  return marginal_counts(ArtifactContext{metrics});
}

const std::vector<PairCounts>& InferenceSession::pair_counts(
    MetricsRegistry* metrics) const {
  return pair_counts(ArtifactContext{metrics});
}

const ImiMatrix& InferenceSession::imi(bool use_traditional_mi) const {
  return imi(use_traditional_mi ? MiVariant::kTraditional
                                : MiVariant::kInfection);
}

const ImiMatrix& InferenceSession::imi(bool use_traditional_mi,
                                       MetricsRegistry* metrics) const {
  return imi(use_traditional_mi ? MiVariant::kTraditional
                                : MiVariant::kInfection,
             ArtifactContext{metrics});
}

const ImiThreshold& InferenceSession::base_threshold(
    bool use_traditional_mi) const {
  return base_threshold(use_traditional_mi ? MiVariant::kTraditional
                                           : MiVariant::kInfection);
}

const ImiThreshold& InferenceSession::base_threshold(
    bool use_traditional_mi, MetricsRegistry* metrics) const {
  return base_threshold(use_traditional_mi ? MiVariant::kTraditional
                                           : MiVariant::kInfection,
                        ArtifactContext{metrics});
}

const SparseCandidateIndex& InferenceSession::sparse_candidates(
    MetricsRegistry* metrics) const {
  return sparse_candidates(ArtifactContext{metrics});
}

const SparseCandidateIndex& InferenceSession::sparse_candidates(
    MetricsRegistry* metrics, uint32_t num_threads) const {
  return sparse_candidates(ArtifactContext{metrics, num_threads});
}

const ImiThreshold& InferenceSession::sparse_base_threshold(
    MetricsRegistry* metrics) const {
  return sparse_base_threshold(ArtifactContext{metrics});
}

const ImiThreshold& InferenceSession::sparse_base_threshold(
    MetricsRegistry* metrics, uint32_t num_threads) const {
  return sparse_base_threshold(ArtifactContext{metrics, num_threads});
}

IncrementalRunner::IncrementalRunner(const InferenceSession& session,
                                     TendsOptions options,
                                     IncrementalRunnerOptions runner_options)
    : session_(session),
      options_(std::move(options)),
      runner_options_(runner_options) {
  runner_options_.max_cube_candidates = std::min(
      runner_options_.max_cube_candidates, CandidateCube::kMaxCubeCandidates);
}

StatusOr<SessionRun> IncrementalRunner::Refresh(const RunContext& context) {
  if (options_.checkpoint.enabled() || options_.checkpoint.resume) {
    return Status::InvalidArgument(
        "IncrementalRunner does not support checkpointing (its reuse state "
        "is in-memory by design; use InferenceSession::Run for durable "
        "runs)");
  }
  const SessionView view = session_.Snapshot();
  const diffusion::StatusMatrix& statuses = view.statuses();
  const uint32_t n = statuses.num_nodes();
  MetricsRegistry* metrics = context.metrics;
  TENDS_TRACE_SPAN(metrics, "session_refresh");
  TENDS_RETURN_IF_ERROR(diffusion::ValidateStatusMatrix(
      statuses, options_.reject_degenerate_columns));
  TENDS_RETURN_IF_ERROR(options_.Validate());
#if TENDS_METRICS_ENABLED
  if (metrics != nullptr) {
    metrics->GetGauge("tends.tends.nodes_total").Set(n);
    metrics->GetGauge("tends.tends.processes").Set(statuses.num_processes());
    metrics->GetGauge("tends.mem.status_matrix_bytes")
        .Set(static_cast<int64_t>(statuses.ByteSize()));
  }
#endif

  SessionRun run;
  if (context.ShouldStop()) {
    run.network = InferredNetwork(n);
    run.diagnostics.deadline_expired = true;
    TENDS_METRIC_ADD(metrics, "tends.tends.deadline_expired", 1);
    return run;
  }

  const internal::TendsArtifacts artifacts =
      internal::ResolveArtifacts(*view.generation_, options_, metrics);
  run.diagnostics.tau = artifacts.tau;
  run.diagnostics.kmeans_iterations = artifacts.kmeans_iterations;

  if (nodes_.size() != n) {
    has_state_ = false;
    nodes_.clear();
    nodes_.resize(n);
  }
  const bool had_state = has_state_;

  Counter* nodes_done_counter =
      TENDS_METRIC_COUNTER(metrics, "tends.tends.nodes_completed");
  Counter* evals_counter =
      TENDS_METRIC_COUNTER(metrics, "tends.tends.score_evaluations");
  Counter* clipped_counter =
      TENDS_METRIC_COUNTER(metrics, "tends.tends.clipped_nodes");

  // The same per-node loop shape as internal::RunTendsNodeLoop — identical
  // candidate sets via the shared PruneCandidates, identical searches
  // (the cube path emits bit-identical JointCounts), results assembled in
  // node order — which is what makes Refresh() byte-identical to Run().
  std::vector<ParentSearchResult> results(n);
  std::vector<uint32_t> candidate_counts(n, 0);
  std::vector<uint8_t> clipped(n, 0);
  std::vector<uint8_t> completed(n, 0);
  std::atomic<bool> expired{false};
  std::atomic<uint32_t> dirty_count{0};
  std::atomic<uint32_t> clean_count{0};
  ParallelFor(options_.num_threads, 0, n, [&](uint32_t i) {
    if (context.ShouldStop()) {
      expired.store(true, std::memory_order_relaxed);
      return;
    }
    NodeState& state = nodes_[i];
    std::vector<graph::NodeId> candidates;
    {
      TENDS_METRICS_STAGE(metrics, "pruning");
      TENDS_TRACE_SPAN(metrics, "prune_candidates", static_cast<int64_t>(i));
      bool was_clipped = false;
      candidates = internal::PruneCandidates(artifacts, options_, i,
                                             &was_clipped);
      if (was_clipped) {
        clipped[i] = 1;
        TENDS_COUNTER_ADD(clipped_counter, 1);
      }
      candidate_counts[i] = static_cast<uint32_t>(candidates.size());
      TENDS_METRIC_RECORD(metrics, "tends.tends.candidates",
                          candidates.size());
    }

    // Dirty-node rule: reuse the cube only when the exact candidate set
    // survived the append (a moved threshold or reshuffled top-k makes the
    // node dirty, because every score depends on which candidates exist).
    const bool reuse = had_state && state.cube.has_value() &&
                       state.candidates == candidates;
    {
      TENDS_METRICS_STAGE(metrics, "parent_search");
      if (reuse) {
        clean_count.fetch_add(1, std::memory_order_relaxed);
        TENDS_METRIC_ADD(metrics, "tends.parent_search.cube_nodes", 1);
        state.cube->AddRows(statuses, state.cube->num_processes(),
                            statuses.num_processes());
        results[i] = FindParents(statuses, i, candidates, options_.search,
                                 context, /*packed=*/nullptr, &*state.cube);
      } else {
        // A dirty node is a fresh search, so the same per-node planner as
        // RunTendsNodeLoop decides its scoring path; a planner-built cube
        // is then retained as the node's append-reuse state (same cells as
        // the matrix build, so reuse semantics are unchanged).
        dirty_count.fetch_add(1, std::memory_order_relaxed);
        const ScoringStrategy plan = PlanScoringStrategy(
            options_.search, statuses.num_processes(), candidates.size());
        std::optional<CandidateCube> fresh;
        if (plan == ScoringStrategy::kCube) {
          Timer cube_timer;
          fresh.emplace(*artifacts.packed, i, candidates);
          TENDS_METRIC_RECORD(metrics, "tends.parent_search.cube_build_ns",
                              static_cast<uint64_t>(
                                  cube_timer.ElapsedSeconds() * 1e9));
          TENDS_METRIC_ADD(metrics, "tends.parent_search.cube_nodes", 1);
          results[i] = FindParents(statuses, i, candidates, options_.search,
                                   context, artifacts.packed, &*fresh);
        } else {
          TENDS_METRIC_ADD(metrics, "tends.parent_search.packed_nodes", 1);
          results[i] = FindParents(statuses, i, candidates, options_.search,
                                   context, artifacts.packed);
        }
        state.candidates = candidates;
        if (candidates.size() <= runner_options_.max_cube_candidates) {
          if (fresh.has_value()) {
            state.cube = std::move(fresh);
          } else {
            state.cube.emplace(*artifacts.packed, i, std::move(candidates));
          }
        } else {
          state.cube.reset();
        }
      }
    }
    TENDS_COUNTER_ADD(evals_counter, results[i].score_evaluations);
    if (results[i].stopped) {
      expired.store(true, std::memory_order_relaxed);
    } else {
      completed[i] = 1;
      TENDS_COUNTER_ADD(nodes_done_counter, 1);
    }
  });

  InferredNetwork network(n);
  uint64_t total_candidates = 0;
  for (uint32_t i = 0; i < n; ++i) {
    total_candidates += candidate_counts[i];
    run.diagnostics.max_candidates_seen =
        std::max(run.diagnostics.max_candidates_seen, candidate_counts[i]);
    run.diagnostics.clipped_nodes += clipped[i];
    run.diagnostics.total_score_evaluations += results[i].score_evaluations;
    run.diagnostics.nodes_completed += completed[i];
    if (completed[i]) run.diagnostics.network_score += results[i].score;
    for (graph::NodeId parent : results[i].parents) {
      const double weight = artifacts.sparse != nullptr
                                ? artifacts.sparse->Get(i, parent)
                                : artifacts.imi->Get(i, parent);
      network.AddEdge(parent, i, weight);
    }
  }
  run.diagnostics.mean_candidates = static_cast<double>(total_candidates) / n;
  run.diagnostics.deadline_expired = expired.load(std::memory_order_relaxed);
  if (run.diagnostics.deadline_expired) {
    TENDS_METRIC_ADD(metrics, "tends.tends.deadline_expired", 1);
  }
  TENDS_METRIC_ADD(metrics, "tends.tends.edges_inferred", network.num_edges());
  run.network = std::move(network);

  last_dirty_nodes_ = dirty_count.load(std::memory_order_relaxed);
  last_clean_nodes_ = clean_count.load(std::memory_order_relaxed);
  last_epoch_ = view.epoch();
  TENDS_GAUGE_SET(metrics, "tends.session.dirty_nodes", last_dirty_nodes_);
  TENDS_GAUGE_SET(metrics, "tends.session.clean_nodes", last_clean_nodes_);
  // A cut-short refresh may hold partial per-node state (searches stopped
  // mid-greedy are never cached); drop it all so the next refresh is a
  // clean full pass.
  has_state_ = !run.diagnostics.deadline_expired;
  if (!has_state_) {
    nodes_.clear();
    nodes_.resize(n);
  }
  return run;
}

SweepRunner::SweepRunner(const InferenceSession& session,
                         SweepRunnerOptions options)
    : session_(session), options_(std::move(options)) {}

StatusOr<SweepResult> SweepRunner::Run(const std::vector<TendsOptions>& runs,
                                       const RunContext& context) const {
  if (options_.run_parallelism == 0) {
    return Status::InvalidArgument("run_parallelism must be > 0");
  }
  // Fail fast on any bad option set before starting the sweep: a sweep is
  // all-or-nothing on configuration (but not on deadline, see below).
  for (size_t r = 0; r < runs.size(); ++r) {
    Status status = runs[r].Validate();
    if (!status.ok()) {
      return Status::InvalidArgument(StrFormat(
          "sweep run %zu: %s", r, status.message().c_str()));
    }
  }
  MetricsRegistry* metrics = context.metrics;
  TENDS_TRACE_SPAN(metrics, "sweep");
  Counter* completed_counter =
      TENDS_METRIC_COUNTER(metrics, "tends.sweep.runs_completed");

  // One pinned generation for the whole sweep: every run sees the same
  // observations even when appends land mid-sweep, and the generation's
  // artifacts stay alive until the sweep returns.
  const SessionView view = session_.Snapshot();

  SweepResult result;
  result.runs_requested = runs.size();
  const size_t num_runs = runs.size();
  std::vector<std::optional<SweepRunResult>> slots(num_runs);
  std::vector<Status> statuses(num_runs, Status::OK());
  std::atomic<size_t> started{0};
  std::atomic<bool> skipped_any{false};
  std::mutex callback_mutex;

  // Outer level of the runs × nodes two-level ParallelFor; the inner level
  // is each run's own per-node loop. Nesting is deadlock-free even though
  // both levels share one pool: a ParallelFor caller drains chunks itself
  // and never waits for a queued task to start (common/parallel.h).
  ParallelFor(options_.run_parallelism, 0, static_cast<uint32_t>(num_runs),
              [&](uint32_t r) {
                // Per-run deadline check: runs not started in time are
                // skipped outright (completed runs already in flight are
                // kept).
                if (context.ShouldStop()) {
                  skipped_any.store(true, std::memory_order_relaxed);
                  return;
                }
                started.fetch_add(1, std::memory_order_relaxed);
                Timer timer;
                StatusOr<SessionRun> run = view.Run(runs[r], context);
                if (!run.ok()) {
                  statuses[r] = run.status();
                  return;
                }
                SweepRunResult& slot = slots[r].emplace();
                slot.run_index = r;
                slot.options = runs[r];
                slot.network = std::move(run->network);
                slot.diagnostics = run->diagnostics;
                slot.seconds = timer.ElapsedSeconds();
                if (!slot.diagnostics.deadline_expired) {
                  TENDS_COUNTER_ADD(completed_counter, 1);
                  if (options_.on_run_complete) {
                    std::lock_guard<std::mutex> lock(callback_mutex);
                    options_.on_run_complete(slot);
                  }
                }
              });

  for (size_t r = 0; r < num_runs; ++r) {
    TENDS_RETURN_IF_ERROR(statuses[r]);
  }
  result.runs_started = started.load(std::memory_order_relaxed);
  for (size_t r = 0; r < num_runs; ++r) {
    if (!slots[r].has_value()) continue;
    if (slots[r]->diagnostics.deadline_expired) {
      skipped_any.store(true, std::memory_order_relaxed);
      continue;
    }
    result.completed.push_back(std::move(*slots[r]));
  }
  result.stopped_early =
      skipped_any.load(std::memory_order_relaxed) ||
      result.completed.size() != result.runs_requested;
  return result;
}

}  // namespace tends::inference
