#include "inference/session.h"

#include <atomic>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/stringutil.h"
#include "common/timer.h"
#include "diffusion/validation.h"

namespace tends::inference {

InferenceSession::InferenceSession(diffusion::StatusMatrix statuses)
    : statuses_(std::move(statuses)) {}

InferenceSession::InferenceSession(diffusion::StatusMatrix statuses,
                                   PackedStatuses packed)
    : statuses_(std::move(statuses)) {
  TENDS_CHECK(packed.num_processes() == statuses_.num_processes() &&
              packed.num_nodes() == statuses_.num_nodes())
      << "pre-packed statuses shape (" << packed.num_processes() << " x "
      << packed.num_nodes() << ") does not match the status matrix ("
      << statuses_.num_processes() << " x " << statuses_.num_nodes() << ")";
  std::call_once(packed_.once, [&] { packed_.value.emplace(std::move(packed)); });
}

template <typename T, typename Init>
const T& InferenceSession::Memoize(const Memo<T>& memo,
                                   MetricsRegistry* metrics,
                                   Init&& init) const {
  bool computed = false;
  std::call_once(memo.once, [&] {
    memo.value.emplace(init());
    computed = true;
  });
  // Losers of a first-computation race blocked in call_once until the
  // winner finished; they (and every later caller) count as hits.
  if (computed) {
    TENDS_METRIC_ADD(metrics, "tends.session.artifact_misses", 1);
  } else {
    TENDS_METRIC_ADD(metrics, "tends.session.artifact_hits", 1);
  }
  return *memo.value;
}

const PackedStatuses& InferenceSession::packed(MetricsRegistry* metrics) const {
  return Memoize(packed_, metrics, [&] {
    TENDS_METRICS_STAGE(metrics, "pack_statuses");
    PackedStatuses packed(statuses_);
    TENDS_GAUGE_SET(metrics, "tends.mem.packed_statuses_bytes",
                    packed.ByteSize());
    return packed;
  });
}

const std::vector<uint32_t>& InferenceSession::marginal_counts(
    MetricsRegistry* metrics) const {
  return Memoize(marginal_counts_, metrics, [&] {
    std::vector<uint32_t> counts = packed(metrics).InfectedCounts();
    TENDS_GAUGE_SET(metrics, "tends.mem.marginal_counts_bytes",
                    counts.size() * sizeof(uint32_t));
    return counts;
  });
}

const std::vector<PairCounts>& InferenceSession::pair_counts(
    MetricsRegistry* metrics) const {
  return Memoize(pair_counts_, metrics, [&] {
    // Dependencies are triggered before the stage opens so their cost is
    // attributed to their own stage names, as in a fresh run.
    const PackedStatuses& packed_columns = packed(metrics);
    TENDS_METRICS_STAGE(metrics, "imi");
    std::vector<PairCounts> counts =
        ComputePairCountsUpperTriangle(packed_columns);
    TENDS_GAUGE_SET(metrics, "tends.mem.pair_counts_bytes",
                    counts.size() * sizeof(PairCounts));
    return counts;
  });
}

const ImiMatrix& InferenceSession::imi(bool use_traditional_mi,
                                       MetricsRegistry* metrics) const {
  const Memo<ImiMatrix>& memo =
      use_traditional_mi ? imi_traditional_ : imi_infection_;
  return Memoize(memo, metrics, [&] {
    const std::vector<PairCounts>& counts = pair_counts(metrics);
    TENDS_METRICS_STAGE(metrics, "imi");
    TENDS_TRACE_SPAN(metrics, "imi");
    TENDS_METRIC_ADD(metrics, "tends.imi.pairs", counts.size());
    ImiMatrix matrix(num_nodes(), counts, use_traditional_mi);
    // Both variants have identical dense n*n footprints, so last-write-wins
    // is exact whichever variant(s) a session materializes.
    TENDS_GAUGE_SET(metrics, "tends.mem.imi_matrix_bytes", matrix.ByteSize());
    return matrix;
  });
}

const ImiThreshold& InferenceSession::base_threshold(
    bool use_traditional_mi, MetricsRegistry* metrics) const {
  const Memo<ImiThreshold>& memo =
      use_traditional_mi ? threshold_traditional_ : threshold_infection_;
  return Memoize(memo, metrics, [&] {
    const ImiMatrix& matrix = imi(use_traditional_mi, metrics);
    TENDS_METRICS_STAGE(metrics, "kmeans");
    TENDS_TRACE_SPAN(metrics, "kmeans");
    ImiThreshold threshold = FindImiThreshold(matrix);
    TENDS_METRIC_ADD(metrics, "tends.kmeans.iterations", threshold.iterations);
    return threshold;
  });
}

const SparseCandidateIndex& InferenceSession::sparse_candidates(
    MetricsRegistry* metrics, uint32_t num_threads) const {
  return Memoize(sparse_candidates_, metrics, [&] {
    const PackedStatuses& packed_columns = packed(metrics);
    const std::vector<uint32_t>& marginals = marginal_counts(metrics);
    SparseCandidateOptions options;
    options.num_threads = num_threads;
    return BuildSparseCandidateIndex(packed_columns, marginals, options,
                                     metrics);
  });
}

const ImiThreshold& InferenceSession::sparse_base_threshold(
    MetricsRegistry* metrics, uint32_t num_threads) const {
  return Memoize(threshold_sparse_, metrics, [&] {
    const SparseCandidateIndex& index = sparse_candidates(metrics, num_threads);
    TENDS_METRICS_STAGE(metrics, "kmeans");
    TENDS_TRACE_SPAN(metrics, "kmeans");
    ImiThreshold threshold = FindImiThreshold(index);
    TENDS_METRIC_ADD(metrics, "tends.kmeans.iterations", threshold.iterations);
    return threshold;
  });
}

StatusOr<SessionRun> InferenceSession::Run(const TendsOptions& options,
                                           const RunContext& context) const {
  const uint32_t n = statuses_.num_nodes();
  MetricsRegistry* metrics = context.metrics;
  TENDS_TRACE_SPAN(metrics, "session_run");
  TENDS_RETURN_IF_ERROR(diffusion::ValidateStatusMatrix(
      statuses_, options.reject_degenerate_columns));
  TENDS_RETURN_IF_ERROR(options.Validate());
#if TENDS_METRICS_ENABLED
  if (metrics != nullptr) {
    metrics->GetGauge("tends.tends.nodes_total").Set(n);
    metrics->GetGauge("tends.tends.processes").Set(statuses_.num_processes());
    metrics->GetGauge("tends.mem.status_matrix_bytes")
        .Set(static_cast<int64_t>(statuses_.ByteSize()));
  }
#endif

  SessionRun run;
  // Deadline already blown before any work: same contract as a fresh
  // Tends::Infer — the empty network over n nodes, flagged as expired.
  if (context.ShouldStop()) {
    run.network = InferredNetwork(n);
    run.diagnostics.deadline_expired = true;
    TENDS_METRIC_ADD(metrics, "tends.tends.deadline_expired", 1);
    return run;
  }

  internal::TendsArtifacts artifacts;
  artifacts.statuses = &statuses_;
  artifacts.packed = &packed(metrics);
  const bool sparse_mode = options.candidate_mode == CandidateMode::kSparse;
  if (sparse_mode) {
    artifacts.sparse = &sparse_candidates(metrics, options.num_threads);
  } else {
    artifacts.imi = &imi(options.use_traditional_mi, metrics);
  }
  if (options.tau_override.has_value()) {
    artifacts.tau = *options.tau_override;
  } else {
    const ImiThreshold& threshold =
        sparse_mode ? sparse_base_threshold(metrics, options.num_threads)
                    : base_threshold(options.use_traditional_mi, metrics);
    artifacts.tau = threshold.tau * options.tau_multiplier;
    artifacts.kmeans_iterations = threshold.iterations;
  }

  TENDS_ASSIGN_OR_RETURN(
      run.network, internal::RunTendsNodeLoop(artifacts, options, context,
                                              &run.diagnostics));
  return run;
}

SweepRunner::SweepRunner(const InferenceSession& session,
                         SweepRunnerOptions options)
    : session_(session), options_(std::move(options)) {}

StatusOr<SweepResult> SweepRunner::Run(const std::vector<TendsOptions>& runs,
                                       const RunContext& context) const {
  if (options_.run_parallelism == 0) {
    return Status::InvalidArgument("run_parallelism must be > 0");
  }
  // Fail fast on any bad option set before starting the sweep: a sweep is
  // all-or-nothing on configuration (but not on deadline, see below).
  for (size_t r = 0; r < runs.size(); ++r) {
    Status status = runs[r].Validate();
    if (!status.ok()) {
      return Status::InvalidArgument(StrFormat(
          "sweep run %zu: %s", r, status.message().c_str()));
    }
  }
  MetricsRegistry* metrics = context.metrics;
  TENDS_TRACE_SPAN(metrics, "sweep");
  Counter* completed_counter =
      TENDS_METRIC_COUNTER(metrics, "tends.sweep.runs_completed");

  SweepResult result;
  result.runs_requested = runs.size();
  const size_t num_runs = runs.size();
  std::vector<std::optional<SweepRunResult>> slots(num_runs);
  std::vector<Status> statuses(num_runs, Status::OK());
  std::atomic<size_t> started{0};
  std::atomic<bool> skipped_any{false};
  std::mutex callback_mutex;

  // Outer level of the runs × nodes two-level ParallelFor; the inner level
  // is each run's own per-node loop. Nesting is deadlock-free even though
  // both levels share one pool: a ParallelFor caller drains chunks itself
  // and never waits for a queued task to start (common/parallel.h).
  ParallelFor(options_.run_parallelism, 0, static_cast<uint32_t>(num_runs),
              [&](uint32_t r) {
                // Per-run deadline check: runs not started in time are
                // skipped outright (completed runs already in flight are
                // kept).
                if (context.ShouldStop()) {
                  skipped_any.store(true, std::memory_order_relaxed);
                  return;
                }
                started.fetch_add(1, std::memory_order_relaxed);
                Timer timer;
                StatusOr<SessionRun> run = session_.Run(runs[r], context);
                if (!run.ok()) {
                  statuses[r] = run.status();
                  return;
                }
                SweepRunResult& slot = slots[r].emplace();
                slot.run_index = r;
                slot.options = runs[r];
                slot.network = std::move(run->network);
                slot.diagnostics = run->diagnostics;
                slot.seconds = timer.ElapsedSeconds();
                if (!slot.diagnostics.deadline_expired) {
                  TENDS_COUNTER_ADD(completed_counter, 1);
                  if (options_.on_run_complete) {
                    std::lock_guard<std::mutex> lock(callback_mutex);
                    options_.on_run_complete(slot);
                  }
                }
              });

  for (size_t r = 0; r < num_runs; ++r) {
    TENDS_RETURN_IF_ERROR(statuses[r]);
  }
  result.runs_started = started.load(std::memory_order_relaxed);
  for (size_t r = 0; r < num_runs; ++r) {
    if (!slots[r].has_value()) continue;
    if (slots[r]->diagnostics.deadline_expired) {
      skipped_any.store(true, std::memory_order_relaxed);
      continue;
    }
    result.completed.push_back(std::move(*slots[r]));
  }
  result.stopped_early =
      skipped_any.load(std::memory_order_relaxed) ||
      result.completed.size() != result.runs_requested;
  return result;
}

}  // namespace tends::inference
