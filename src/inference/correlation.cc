#include "inference/correlation.h"

#include "inference/imi.h"

namespace tends::inference {

StatusOr<InferredNetwork> CorrelationBaseline::Infer(
    const diffusion::DiffusionObservations& observations) {
  if (options_.num_edges == 0) {
    return Status::InvalidArgument(
        "Correlation baseline requires a target edge count");
  }
  const uint32_t n = observations.num_nodes();
  if (n == 0) return Status::InvalidArgument("no nodes in observations");
  ImiMatrix imi(observations.statuses, options_.use_traditional_mi);
  InferredNetwork network(n);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      if (i == j) continue;
      double value = imi.Get(i, j);
      if (value > 0.0) network.AddEdge(i, j, value);
    }
  }
  network.KeepTopM(options_.num_edges);
  return network;
}

}  // namespace tends::inference
