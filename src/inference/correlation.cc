#include "inference/correlation.h"

#include "common/metrics.h"
#include "common/timer.h"
#include "diffusion/validation.h"
#include "inference/imi.h"

namespace tends::inference {

StatusOr<InferredNetwork> CorrelationBaseline::Infer(
    const diffusion::DiffusionObservations& observations,
    const RunContext& context) {
  if (options_.num_edges == 0) {
    return Status::InvalidArgument(
        "Correlation baseline requires a target edge count");
  }
  MetricsRegistry* metrics = context.metrics;
  TENDS_METRICS_STAGE(metrics, "correlation");
  TENDS_TRACE_SPAN(metrics, "correlation_infer");
  Timer timer;
  TENDS_RETURN_IF_ERROR(diffusion::ValidateStatusMatrix(
      observations.statuses, /*reject_degenerate_columns=*/false));
  const uint32_t n = observations.num_nodes();
  ImiMatrix imi(observations.statuses, options_.use_traditional_mi
                                           ? MiVariant::kTraditional
                                           : MiVariant::kInfection);
  TENDS_METRIC_ADD(metrics, "tends.correlation.pairs",
                   static_cast<uint64_t>(n) * (n - 1) / 2);
  // Per-node deadline check: rows already ranked stay in the output.
  StopChecker stop(context);
  InferredNetwork network(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (stop.ShouldStop()) break;
    for (uint32_t j = 0; j < n; ++j) {
      if (i == j) continue;
      double value = imi.Get(i, j);
      if (value > 0.0) network.AddEdge(i, j, value);
    }
  }
  network.KeepTopM(options_.num_edges);
  diagnostics_ = {std::string(name()), timer.ElapsedSeconds(),
                  context.ShouldStop()};
  return network;
}

}  // namespace tends::inference
