#ifndef TENDS_INFERENCE_COUNTING_H_
#define TENDS_INFERENCE_COUNTING_H_

#include <cstdint>
#include <vector>

#include "diffusion/cascade.h"
#include "graph/graph.h"

namespace tends::inference {

/// Sufficient statistics for a child node and a candidate parent set F:
/// for every parent-status combination j observed in S, the counts
/// N_ij1 (child uninfected, paper's s_1 = 0) and N_ij2 (child infected).
/// Combinations never observed contribute N_ij = 0 and are represented only
/// by the `num_unobserved` tally (the paper's φ_F).
///
/// The combination index j encodes parent statuses as bits: bit b is the
/// status of parents[b]. Observed combinations are emitted in ascending
/// combo order (canonical), so two kernels computing the same statistics
/// produce bit-identical structs — the invariant the differential tests
/// and the packed/naive kernel equivalence rely on.
struct JointCounts {
  /// Parallel arrays over *observed* combinations, ascending by combo.
  std::vector<uint32_t> combo;         // bit-encoded parent statuses
  std::vector<uint32_t> child0_count;  // N with child status 0
  std::vector<uint32_t> child1_count;  // N with child status 1
  /// φ_F: number of the 2^|F| combinations with no instance in S.
  uint64_t num_unobserved = 0;
  /// 2^|F| (total possible combinations).
  uint64_t num_possible = 0;

  size_t num_observed() const { return combo.size(); }
};

/// Maximum parent-set size CountJoint accepts (combination indices are
/// 32-bit and dense tables are bounded).
inline constexpr uint32_t kMaxCountableParents = 24;

/// Which sufficient-statistics kernel scores parent sets. Both produce
/// bit-identical JointCounts (and therefore bit-identical scores and
/// inferred networks); the naive kernel is kept as the reference oracle
/// for the differential test suite.
enum class CountingKernel {
  /// Word-packed columns + popcount / per-process combination codes;
  /// ~64 statuses per instruction. Default.
  kPacked,
  /// Reference implementation: re-scans the raw uint8 status matrix at
  /// O(beta * |W|) per evaluation.
  kNaive,
};

/// Counts parent-status combinations of `parents` against `child` over all
/// processes in `statuses`. Requires parents.size() <= kMaxCountableParents
/// (checked; exceeding it is a programming error guarded by TENDS options).
JointCounts CountJoint(const diffusion::StatusMatrix& statuses,
                       graph::NodeId child,
                       const std::vector<graph::NodeId>& parents);

/// 2x2 contingency counts of two nodes' statuses across processes:
/// count[a][b] = #processes with X_i = a and X_j = b.
struct PairCounts {
  uint32_t c00 = 0, c01 = 0, c10 = 0, c11 = 0;
  uint32_t total() const { return c00 + c01 + c10 + c11; }
};

/// Reconstructs the full 2x2 table of a node pair from its co-infection
/// count c11 and the two marginal infected counts. Pure integer arithmetic,
/// so the result is bit-identical to the popcount CountPair — this is what
/// lets the sparse candidate pipeline evaluate only c11 per pair and still
/// feed InfectionMi the exact same struct the dense path does.
inline PairCounts PairCountsFromCoInfection(uint32_t c11, uint32_t marginal_i,
                                            uint32_t marginal_j,
                                            uint32_t num_processes) {
  PairCounts counts;
  counts.c11 = c11;
  counts.c10 = marginal_i - c11;
  counts.c01 = marginal_j - c11;
  counts.c00 = num_processes - counts.c11 - counts.c10 - counts.c01;
  return counts;
}

PairCounts CountPair(const diffusion::StatusMatrix& statuses,
                     graph::NodeId i, graph::NodeId j);

/// Bit-packed per-node status columns for fast counting: node v's statuses
/// across processes stored as ceil(beta/64) words. Build once per status
/// matrix and share read-only across threads (all methods are const).
class PackedStatuses {
 public:
  explicit PackedStatuses(const diffusion::StatusMatrix& statuses);

  /// An all-zero matrix of the given shape for producers that know the
  /// bits as they are generated (the simulator's statuses-only fast path):
  /// fill through MutableColumn, then the object is indistinguishable from
  /// packing an equal StatusMatrix.
  PackedStatuses(uint32_t num_processes, uint32_t num_nodes);

  uint32_t num_nodes() const { return num_nodes_; }
  uint32_t num_processes() const { return num_processes_; }
  uint32_t words_per_node() const { return words_per_node_; }

  /// Payload bytes of the packed words (n * ceil(beta/64) * 8); feeds the
  /// tends.mem.packed_statuses_bytes gauge at allocation sites.
  size_t ByteSize() const { return words_.size() * sizeof(uint64_t); }

  /// Node v's statuses as words_per_node() little-endian words; bits at or
  /// beyond num_processes() are zero.
  const uint64_t* Column(graph::NodeId v) const {
    return words_.data() + static_cast<size_t>(v) * words_per_node_;
  }

  /// Mutable column for in-place production (pairs with the shape
  /// constructor). Process p is bit (p % 64) of word (p / 64). Distinct
  /// words may be written from different threads concurrently; pad bits at
  /// or beyond num_processes() must stay zero (the counting kernels rely
  /// on it).
  uint64_t* MutableColumn(graph::NodeId v) {
    return words_.data() + static_cast<size_t>(v) * words_per_node_;
  }

  /// Same contingency table as CountPair, via popcount (O(beta/64)).
  PairCounts CountPair(graph::NodeId i, graph::NodeId j) const;

  /// Number of processes in which `v` is infected.
  uint32_t InfectedCount(graph::NodeId v) const;

  /// The marginal count table: InfectedCount(v) for every node, in node
  /// order. One O(n * beta / 64) pass; the session memoizes the result.
  std::vector<uint32_t> InfectedCounts() const;

  /// Bit-identical to the free CountJoint on the unpacked matrix (same bit
  /// encoding — bit b is parents[b]'s status — and same canonical emission
  /// order). Word-at-a-time popcount over all 2^|W| combination masks for
  /// |W| <= 4; per-process combination-code assembly above.
  JointCounts CountJoint(graph::NodeId child,
                         const std::vector<graph::NodeId>& parents) const;

  /// Appends the processes of `chunk` after this object's processes, as if
  /// the whole concatenated status matrix had been packed in one go: column
  /// strides regrow, the chunk's bits are spliced into the partial tail
  /// word when num_processes() % 64 != 0, and pad bits beyond the new
  /// process count stay zero. Byte-identical to
  /// PackedStatuses(concatenated matrix). Node counts must match.
  void Append(const PackedStatuses& chunk);

  /// Convenience overload: packs `chunk` and appends it.
  void Append(const diffusion::StatusMatrix& chunk);

 private:
  /// Valid-bit mask of word `w` (all-ones except the trailing pad of the
  /// last word).
  uint64_t PadMask(uint32_t w) const;

  uint32_t num_nodes_ = 0;
  uint32_t num_processes_ = 0;
  uint32_t words_per_node_ = 0;
  std::vector<uint64_t> words_;
};

/// Inverted index over the packed status columns: for every diffusion
/// process p, the sorted list of nodes infected in p (CSR over processes).
/// This is the row view the column-major PackedStatuses cannot answer
/// cheaply, and the engine of the sparse candidate pipeline: two nodes
/// co-occur iff they share at least one process list, so iterating the
/// lists of the processes a node belongs to enumerates exactly the pairs
/// with c11 > 0 — O(sum of squared cascade sizes) total instead of O(n^2).
/// Build once per status matrix and share read-only across threads.
class InvertedStatusIndex {
 public:
  explicit InvertedStatusIndex(const PackedStatuses& packed);

  uint32_t num_processes() const { return num_processes_; }

  /// Nodes infected in process p, ascending node id.
  const uint32_t* Nodes(uint32_t p) const {
    return nodes_.data() + offsets_[p];
  }
  uint32_t Size(uint32_t p) const {
    return static_cast<uint32_t>(offsets_[p + 1] - offsets_[p]);
  }

  /// Total infections across processes (== sum of all marginal counts).
  uint64_t total_infections() const { return nodes_.size(); }

  /// Payload bytes (offsets + node lists); feeds the
  /// tends.mem.sparse_inverted_index_bytes gauge at allocation sites.
  size_t ByteSize() const {
    return offsets_.size() * sizeof(uint64_t) + nodes_.size() * sizeof(uint32_t);
  }

 private:
  uint32_t num_processes_ = 0;
  std::vector<uint64_t> offsets_;  // num_processes + 1
  std::vector<uint32_t> nodes_;
};

/// Incremental joint counting against a fixed child: caches the
/// per-process combination codes of a base parent set F so that evaluating
/// F ∪ W costs one OR-in of each of W's packed columns plus a single tally
/// pass, instead of re-scanning |F ∪ W| status-matrix columns. This is the
/// access pattern of the greedy parent search, where one base set is
/// probed against many small extensions before it changes.
///
/// Count() returns statistics for SortedUnion(base, extra) with the
/// canonical bit encoding of the *sorted* union — bit-identical to
/// CountJoint(statuses, child, SortedUnion(base, extra)).
///
/// Not thread-safe; use one counter per (thread, child).
class IncrementalJointCounter {
 public:
  /// Starts with an empty base set.
  IncrementalJointCounter(const PackedStatuses& packed, graph::NodeId child);

  /// Replaces the cached base set (must be sorted ascending, distinct,
  /// size <= kMaxCountableParents). O(|base| * beta / 64) bit scatter.
  void SetBase(const std::vector<graph::NodeId>& base);

  const std::vector<graph::NodeId>& base() const { return base_; }

  /// Sufficient statistics of SortedUnion(base, extra). Members of `extra`
  /// already in the base are ignored; the rest may arrive in any order.
  JointCounts Count(const std::vector<graph::NodeId>& extra) const;

  /// Number of SetBase rebuilds performed (diagnostics).
  uint64_t rebuilds() const { return rebuilds_; }

 private:
  const PackedStatuses& packed_;
  graph::NodeId child_;
  std::vector<graph::NodeId> base_;
  /// codes_[p] = base-parent statuses of process p, bit b = base_[b].
  std::vector<uint32_t> codes_;
  /// Child statuses unpacked to one byte per process (tally-loop operand).
  std::vector<uint8_t> child_bits_;
  uint64_t rebuilds_ = 0;
  /// Scratch for Count (mutable: Count is logically const).
  mutable std::vector<uint32_t> scratch_codes_;
};

/// Full contingency cube of one child over a fixed candidate set C: cell
/// [code][s] counts the processes whose candidate statuses bit-encode to
/// `code` (bit b = candidates[b]) and whose child status is s. Two
/// properties make it the engine of incremental (append-only) inference:
///
///  - It is delta-updatable: AddRows tallies only the appended processes,
///    so after a chunk lands the cube over the grown history costs
///    O(chunk * |C|) to refresh, independent of how long the history is.
///  - It answers CountJoint for *any* subset of C by marginalizing the
///    cube (summing out the non-subset positions), in O(2^|C|) — without
///    touching the status matrix at all. The sums are pure integer
///    adds over a partition of the processes, so the emitted JointCounts
///    is bit-identical to CountJoint on the concatenated matrix: the
///    greedy parent search run against a cube returns byte-identical
///    results, which is what the append-vs-fresh differential relies on.
///
/// Memory is 2^|C| * 2 uint32 cells, hence the hard kMaxCubeCandidates
/// cap (16 -> 512 KiB worst case per node); callers that see larger
/// candidate sets fall back to the packed kernels.
///
/// Count() uses mutable scratch: one cube must not serve concurrent
/// Count() calls (one cube per (thread, node), like the other counters).
class CandidateCube {
 public:
  /// Most candidates a cube accepts (cells = 2^|C| * 2 uint32).
  static constexpr uint32_t kMaxCubeCandidates = 16;

  /// Builds the cube over all current processes of `statuses`.
  /// `candidates` must be sorted ascending, distinct, without `child`,
  /// and at most kMaxCubeCandidates long (checked).
  CandidateCube(const diffusion::StatusMatrix& statuses, graph::NodeId child,
                std::vector<graph::NodeId> candidates);

  /// Same cube, built from the packed columns instead of the raw matrix:
  /// per candidate one contiguous word scan scattering its bit into a
  /// per-process code array, then a single tally pass. Cache-friendly
  /// where the row-major build strides across n-byte rows, and the cells
  /// are identical integer tallies, so the two constructors are
  /// interchangeable (the differential suite compares them directly).
  /// This is the build the per-node scoring planner uses.
  CandidateCube(const PackedStatuses& packed, graph::NodeId child,
                std::vector<graph::NodeId> candidates);

  /// Tallies processes [begin_process, end_process) of `statuses` into the
  /// cube. `begin_process` must equal num_processes() — appends are
  /// contiguous and exactly-once, mirroring the session's append contract.
  void AddRows(const diffusion::StatusMatrix& statuses,
               uint32_t begin_process, uint32_t end_process);

  /// Sufficient statistics of `parents` (sorted ascending, subset of
  /// candidates(); checked) vs the child, bit-identical to
  /// CountJoint(concatenated statuses, child, parents).
  JointCounts Count(const std::vector<graph::NodeId>& parents) const;

  graph::NodeId child() const { return child_; }
  const std::vector<graph::NodeId>& candidates() const { return candidates_; }
  uint32_t num_processes() const { return num_processes_; }
  /// Processes with the child infected (the parent search's n2), tracked
  /// so cube-backed searches never rescan the status matrix.
  uint32_t child_infected_count() const { return child_infected_; }

  /// Payload bytes of the cells (feeds memory accounting at call sites).
  size_t ByteSize() const {
    return cells_.size() * sizeof(uint32_t) +
           candidates_.size() * sizeof(graph::NodeId);
  }

 private:
  graph::NodeId child_ = 0;
  std::vector<graph::NodeId> candidates_;
  /// cells_[code * 2 + s]: processes with candidate-status code `code`
  /// and child status `s`.
  std::vector<uint32_t> cells_;
  uint32_t num_processes_ = 0;
  uint32_t child_infected_ = 0;
  /// Scratch for Count's fold (mutable: Count is logically const).
  mutable std::vector<uint32_t> scratch_;
};

}  // namespace tends::inference

#endif  // TENDS_INFERENCE_COUNTING_H_
