#ifndef TENDS_INFERENCE_COUNTING_H_
#define TENDS_INFERENCE_COUNTING_H_

#include <cstdint>
#include <vector>

#include "diffusion/cascade.h"
#include "graph/graph.h"

namespace tends::inference {

/// Sufficient statistics for a child node and a candidate parent set F:
/// for every parent-status combination j observed in S, the counts
/// N_ij1 (child uninfected, paper's s_1 = 0) and N_ij2 (child infected).
/// Combinations never observed contribute N_ij = 0 and are represented only
/// by the `num_unobserved` tally (the paper's φ_F).
///
/// The combination index j encodes parent statuses as bits: bit b is the
/// status of parents[b].
struct JointCounts {
  /// Parallel arrays over *observed* combinations.
  std::vector<uint32_t> combo;         // bit-encoded parent statuses
  std::vector<uint32_t> child0_count;  // N with child status 0
  std::vector<uint32_t> child1_count;  // N with child status 1
  /// φ_F: number of the 2^|F| combinations with no instance in S.
  uint64_t num_unobserved = 0;
  /// 2^|F| (total possible combinations).
  uint64_t num_possible = 0;

  size_t num_observed() const { return combo.size(); }
};

/// Maximum parent-set size CountJoint accepts (combination indices are
/// 32-bit and dense tables are bounded).
inline constexpr uint32_t kMaxCountableParents = 24;

/// Counts parent-status combinations of `parents` against `child` over all
/// processes in `statuses`. Requires parents.size() <= kMaxCountableParents
/// (checked; exceeding it is a programming error guarded by TENDS options).
JointCounts CountJoint(const diffusion::StatusMatrix& statuses,
                       graph::NodeId child,
                       const std::vector<graph::NodeId>& parents);

/// 2x2 contingency counts of two nodes' statuses across processes:
/// count[a][b] = #processes with X_i = a and X_j = b.
struct PairCounts {
  uint32_t c00 = 0, c01 = 0, c10 = 0, c11 = 0;
  uint32_t total() const { return c00 + c01 + c10 + c11; }
};

PairCounts CountPair(const diffusion::StatusMatrix& statuses,
                     graph::NodeId i, graph::NodeId j);

/// Bit-packed per-node status columns for fast pairwise counting: node v's
/// statuses across processes stored as ceil(beta/64) words.
class PackedStatuses {
 public:
  explicit PackedStatuses(const diffusion::StatusMatrix& statuses);

  uint32_t num_nodes() const { return num_nodes_; }
  uint32_t num_processes() const { return num_processes_; }

  /// Same contingency table as CountPair, via popcount (O(beta/64)).
  PairCounts CountPair(graph::NodeId i, graph::NodeId j) const;

  /// Number of processes in which `v` is infected.
  uint32_t InfectedCount(graph::NodeId v) const;

 private:
  const uint64_t* Column(graph::NodeId v) const {
    return words_.data() + static_cast<size_t>(v) * words_per_node_;
  }

  uint32_t num_nodes_ = 0;
  uint32_t num_processes_ = 0;
  uint32_t words_per_node_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace tends::inference

#endif  // TENDS_INFERENCE_COUNTING_H_
