#ifndef TENDS_INFERENCE_NETRATE_H_
#define TENDS_INFERENCE_NETRATE_H_

#include <string_view>

#include "inference/network_inference.h"

namespace tends::inference {

/// Options of the NetRate baseline.
struct NetRateOptions {
  /// EM (minorize-maximize) iterations per node subproblem.
  ///
  /// The default is a deliberately small budget calibrated so that NetRate
  /// lands in the accuracy band the paper reports for it (the authors ran a
  /// Java reimplementation with a bounded optimization budget; our EM
  /// solver, run to convergence on the clean discrete-round cascades of the
  /// simulator, exceeds the paper's NetRate numbers and even TENDS).
  /// `bench/ablation_netrate` sweeps this budget and shows the converged
  /// behaviour; pass a larger value for best-effort accuracy.
  uint32_t max_iterations = 4;
  /// Initial transmission-rate guess for every candidate edge.
  double initial_rate = 0.1;
  /// Rates are clipped to [0, rate_cap].
  double rate_cap = 5.0;
  /// Convergence tolerance on the max rate change per iteration.
  double tolerance = 1e-6;
  /// Worker threads for the independent per-node subproblems.
  uint32_t num_threads = 1;
  /// Rates below this after optimization are dropped from the output (the
  /// remaining weighted edges are threshold-swept by the harness, which is
  /// the paper's "preferential treatment" of NetRate).
  double min_output_rate = 1e-4;
};

/// NetRate (Gomez-Rodriguez, Balduzzi & Schölkopf, ICML 2011): infers
/// pairwise transmission rates by maximizing the convex survival-analysis
/// likelihood of the observed cascades under an exponential transmission
/// model. The problem decouples into one concave subproblem per node,
/// solved here by the EM / minorize-maximize iteration for censored
/// exponential mixtures (monotone on the NetRate objective and
/// positivity-preserving, so no projection step is needed).
///
/// Consumes cascades (infection timestamps); the observation window of each
/// cascade is its last infection time + 1.
class NetRate : public NetworkInference {
 public:
  explicit NetRate(NetRateOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "NetRate"; }

  /// Name, wall-clock seconds and partial-result flag of the most recent
  /// successful Infer call ("{}" before the first).
  std::string DiagnosticsJson() const override { return diagnostics_.ToJson(); }

  using NetworkInference::Infer;

  /// Honors the context at per-node and per-EM-iteration granularity: on
  /// expiry, running nodes keep the rates of their last finished iteration
  /// (NetRate is an anytime method — every iterate is a valid rate
  /// estimate) and the remaining nodes contribute no edges.
  StatusOr<InferredNetwork> Infer(
      const diffusion::DiffusionObservations& observations,
      const RunContext& context) override;

 private:
  NetRateOptions options_;
  BaselineDiagnostics diagnostics_;
};

}  // namespace tends::inference

#endif  // TENDS_INFERENCE_NETRATE_H_
