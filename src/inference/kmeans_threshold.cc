#include "inference/kmeans_threshold.h"

#include <algorithm>

#include "inference/imi.h"
#include "inference/sparse_candidates.h"

namespace tends::inference {

ImiThreshold FindImiThreshold(const std::vector<double>& values,
                              uint32_t max_iterations) {
  std::vector<double> points;
  points.reserve(values.size());
  double max_value = 0.0;
  for (double v : values) {
    if (v >= 0.0) {
      points.push_back(v);
      max_value = std::max(max_value, v);
    }
  }
  ImiThreshold result;
  if (points.empty() || max_value == 0.0) {
    result.noise_count = static_cast<uint32_t>(points.size());
    return result;
  }
  std::sort(points.begin(), points.end());

  // Centroid 0 is pinned at 0; centroid 1 starts at the maximum so the
  // signal cluster begins with the clearly-correlated pairs.
  double signal_mean = max_value;
  size_t split = points.size();  // first index assigned to the signal cluster
  for (uint32_t iter = 1; iter <= max_iterations; ++iter) {
    result.iterations = iter;
    // Assignment step: value v goes to the signal cluster iff it is closer
    // to signal_mean than to 0, i.e. v > signal_mean / 2. Points are
    // sorted, so the boundary is a single split index.
    const double boundary = signal_mean / 2.0;
    size_t new_split = static_cast<size_t>(
        std::upper_bound(points.begin(), points.end(), boundary) -
        points.begin());
    if (new_split == points.size()) {
      // Keep at least the maximum in the signal cluster; an empty signal
      // cluster would leave the free centroid undefined.
      new_split = points.size() - 1;
    }
    // Update step: recompute the free centroid.
    double sum = 0.0;
    for (size_t k = new_split; k < points.size(); ++k) sum += points[k];
    double new_mean = sum / static_cast<double>(points.size() - new_split);
    if (new_split == split && new_mean == signal_mean) break;
    split = new_split;
    signal_mean = new_mean;
  }
  if (split == points.size()) split = points.size() - 1;

  result.signal_mean = signal_mean;
  result.noise_count = static_cast<uint32_t>(split);
  result.signal_count = static_cast<uint32_t>(points.size() - split);
  result.tau = split > 0 ? points[split - 1] : 0.0;
  return result;
}

ImiThreshold FindImiThreshold(const ImiMatrix& imi, uint32_t max_iterations) {
  return FindImiThreshold(imi.UpperTriangleValues(), max_iterations);
}

ImiThreshold FindImiThreshold(const SparseCandidateIndex& index,
                              uint32_t max_iterations) {
  return FindImiThreshold(index.PositiveUpperTriangleValues(), max_iterations);
}

}  // namespace tends::inference
