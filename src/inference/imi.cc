#include "inference/imi.h"

#include <cmath>

#include "common/logging.h"

namespace tends::inference {

double PointwiseMiTerm(const PairCounts& counts, int a, int b) {
  const double total = counts.total();
  if (total == 0) return 0.0;
  const double joint = a ? (b ? counts.c11 : counts.c10)
                         : (b ? counts.c01 : counts.c00);
  if (joint == 0) return 0.0;
  const double pi = a ? counts.c11 + counts.c10 : counts.c01 + counts.c00;
  const double pj = b ? counts.c11 + counts.c01 : counts.c10 + counts.c00;
  const double p_joint = joint / total;
  const double p_i = pi / total;
  const double p_j = pj / total;
  return p_joint * std::log2(p_joint / (p_i * p_j));
}

double TraditionalMi(const PairCounts& counts) {
  return PointwiseMiTerm(counts, 0, 0) + PointwiseMiTerm(counts, 0, 1) +
         PointwiseMiTerm(counts, 1, 0) + PointwiseMiTerm(counts, 1, 1);
}

double InfectionMi(const PairCounts& counts) {
  return PointwiseMiTerm(counts, 1, 1) + PointwiseMiTerm(counts, 0, 0) -
         std::abs(PointwiseMiTerm(counts, 1, 0)) -
         std::abs(PointwiseMiTerm(counts, 0, 1));
}

double InfectionMiFromCoInfection(uint32_t c11, uint32_t marginal_lo,
                                  uint32_t marginal_hi,
                                  uint32_t num_processes) {
  return InfectionMi(PairCountsFromCoInfection(c11, marginal_lo, marginal_hi,
                                               num_processes));
}

std::vector<PairCounts> ComputePairCountsUpperTriangle(
    const PackedStatuses& packed) {
  const uint32_t n = packed.num_nodes();
  std::vector<PairCounts> counts;
  counts.reserve(static_cast<size_t>(n) * (n - 1) / 2);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      counts.push_back(packed.CountPair(i, j));
    }
  }
  return counts;
}

ImiMatrix::ImiMatrix(const diffusion::StatusMatrix& statuses,
                     MiVariant variant)
    : ImiMatrix(PackedStatuses(statuses), variant) {}

ImiMatrix::ImiMatrix(const PackedStatuses& packed, MiVariant variant)
    : ImiMatrix(packed.num_nodes(), ComputePairCountsUpperTriangle(packed),
                variant) {}

ImiMatrix::ImiMatrix(uint32_t num_nodes,
                     const std::vector<PairCounts>& upper_triangle,
                     MiVariant variant)
    : num_nodes_(num_nodes) {
  TENDS_CHECK(upper_triangle.size() ==
              static_cast<size_t>(num_nodes_) * (num_nodes_ - 1) / 2);
  values_.assign(static_cast<size_t>(num_nodes_) * num_nodes_, 0.0);
  size_t pair = 0;
  for (uint32_t i = 0; i < num_nodes_; ++i) {
    for (uint32_t j = i + 1; j < num_nodes_; ++j) {
      const PairCounts& counts = upper_triangle[pair++];
      double value = IsTraditionalMi(variant) ? TraditionalMi(counts)
                                              : InfectionMi(counts);
      values_[static_cast<size_t>(i) * num_nodes_ + j] = value;
      values_[static_cast<size_t>(j) * num_nodes_ + i] = value;
    }
  }
}

std::vector<double> ImiMatrix::UpperTriangleValues() const {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(num_nodes_) * (num_nodes_ - 1) / 2);
  for (uint32_t i = 0; i < num_nodes_; ++i) {
    for (uint32_t j = i + 1; j < num_nodes_; ++j) {
      out.push_back(Get(i, j));
    }
  }
  return out;
}

}  // namespace tends::inference
