#ifndef TENDS_INFERENCE_KMEANS_THRESHOLD_H_
#define TENDS_INFERENCE_KMEANS_THRESHOLD_H_

#include <cstdint>
#include <vector>

namespace tends::inference {

class ImiMatrix;
class SparseCandidateIndex;

/// Result of the modified 2-means clustering used by the pruning method
/// (§IV-B): non-negative IMI values are split into a "noise" cluster whose
/// centroid is pinned at 0 and a "signal" cluster with a free centroid;
/// tau is the largest value assigned to the noise cluster.
struct ImiThreshold {
  double tau = 0.0;
  /// Final centroid of the free (signal) cluster.
  double signal_mean = 0.0;
  uint32_t noise_count = 0;
  uint32_t signal_count = 0;
  uint32_t iterations = 0;
};

/// Runs the modified K-means (K = 2, one mean fixed at 0) on the
/// non-negative entries of `values` (negative entries are dropped first,
/// as the paper removes negative IMI values). Deterministic. With no
/// positive values the threshold is 0 and everything is noise.
ImiThreshold FindImiThreshold(const std::vector<double>& values,
                              uint32_t max_iterations = 100);

/// Convenience overload over a pairwise matrix: clusters its
/// strictly-upper-triangle values (each unordered pair once).
ImiThreshold FindImiThreshold(const ImiMatrix& imi,
                              uint32_t max_iterations = 100);

/// Overload over the sparse candidate index: clusters its stored strictly
/// positive values (each unordered pair once). The dense matrix would
/// additionally contribute exact-0.0 points, but those sit below every
/// boundary the iteration visits (boundaries are strictly positive while
/// any positive value exists), so tau, signal_mean, signal_count and
/// iterations are bit-identical to the dense overload; only noise_count
/// shrinks by the number of non-positive pairs the index never stores.
ImiThreshold FindImiThreshold(const SparseCandidateIndex& index,
                              uint32_t max_iterations = 100);

}  // namespace tends::inference

#endif  // TENDS_INFERENCE_KMEANS_THRESHOLD_H_
