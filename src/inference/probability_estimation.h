#ifndef TENDS_INFERENCE_PROBABILITY_ESTIMATION_H_
#define TENDS_INFERENCE_PROBABILITY_ESTIMATION_H_

#include <vector>

#include "common/statusor.h"
#include "diffusion/cascade.h"
#include "inference/inferred_network.h"

namespace tends::inference {

/// One edge's estimated propagation probability.
struct EdgeProbabilityEstimate {
  graph::Edge edge;
  /// P(child infected | this parent infected, co-parents uninfected),
  /// estimated from the status results with add-one smoothing.
  double probability = 0.0;
  /// Number of processes the isolated-parent estimate is based on; when it
  /// is 0 the estimate falls back to the unconditional pair estimate
  /// P(child | parent).
  uint32_t support = 0;
};

/// Quantifies propagation probabilities for the edges of an inferred
/// topology from final statuses only — the companion problem the paper
/// delegates to prior work ([28], Yan et al. DASFAA 2017) after the
/// topology is recovered. For each edge (u -> v) the estimator conditions
/// on the processes where u is infected and all of v's other inferred
/// parents are uninfected, isolating u's influence; with no such processes
/// it falls back to P(v = 1 | u = 1).
StatusOr<std::vector<EdgeProbabilityEstimate>> EstimatePropagationProbabilities(
    const diffusion::StatusMatrix& statuses, const InferredNetwork& network);

}  // namespace tends::inference

#endif  // TENDS_INFERENCE_PROBABILITY_ESTIMATION_H_
