#ifndef TENDS_INFERENCE_LIFT_H_
#define TENDS_INFERENCE_LIFT_H_

#include <string_view>

#include "inference/network_inference.h"

namespace tends::inference {

/// Options of the LIFT baseline.
struct LiftOptions {
  /// Number of edges to infer (the paper supplies the true m).
  uint64_t num_edges = 0;
  /// Additive smoothing of the conditional infection-probability estimates
  /// (nodes are sources in only ~alpha*beta processes, so the estimates are
  /// noisy without smoothing).
  double smoothing = 1.0;
};

/// LIFT (Amin, Heidari & Kearns, ICML 2014): reconstructs edges from
/// diffusion sources plus final infection statuses. The lifting effect of u
/// on v is the increase in v's infection probability when u is among the
/// initially infected:
///   lift(u, v) = P(X_v = 1 | u in sources) - P(X_v = 1 | u not in sources),
/// estimated with additive smoothing. The num_edges ordered pairs with the
/// largest lifts become the inferred edges.
class Lift : public NetworkInference {
 public:
  explicit Lift(LiftOptions options) : options_(options) {}

  std::string_view name() const override { return "LIFT"; }

  /// Name, wall-clock seconds and partial-result flag of the most recent
  /// successful Infer call ("{}" before the first).
  std::string DiagnosticsJson() const override { return diagnostics_.ToJson(); }

  using NetworkInference::Infer;

  /// Honors the context at per-source-node granularity: on expiry the lift
  /// rows not yet scored contribute no edges.
  StatusOr<InferredNetwork> Infer(
      const diffusion::DiffusionObservations& observations,
      const RunContext& context) override;

 private:
  LiftOptions options_;
  BaselineDiagnostics diagnostics_;
};

}  // namespace tends::inference

#endif  // TENDS_INFERENCE_LIFT_H_
