#ifndef TENDS_INFERENCE_SPARSE_CANDIDATES_H_
#define TENDS_INFERENCE_SPARSE_CANDIDATES_H_

#include <cstdint>
#include <vector>

#include "common/metrics.h"
#include "graph/graph.h"
#include "inference/counting.h"

namespace tends::inference {

/// Why the sparse pipeline can replace the dense IMI matrix bit-for-bit
/// (the invariant the differential suite enforces):
///
///   * A pair with zero co-infection (c11 = 0) can never be a candidate.
///     If both marginals are positive, MI(1,1) = 0, MI(0,0) > 0 and the
///     cross terms dominate: InfectionMi < 0 strictly. If either marginal
///     is 0, every term is 0 and the value is exactly 0.0. Pruning tests
///     `value > tau` with tau >= 0, so neither case can pass.
///   * Of co-occurring pairs, only those with InfectionMi > 0.0 can pass
///     the same test; the index therefore stores exactly the strictly
///     positive values, each reconstructed from (c11, marginals, beta) in
///     the canonical (min-id, max-id) orientation — bit-identical doubles
///     to the dense matrix entries.
///   * The K-means threshold is unchanged by dropping the non-positive
///     values (see FindImiThreshold's sparse overload).
///
/// This only holds for infection MI with non-negative tau; TendsOptions::
/// Validate rejects sparse mode combined with traditional MI, disabled
/// pruning, or a negative tau_override.

/// How a node's sparse row is generated (SparseCandidateOptions::strategy).
/// kAuto picks per node by a cost model; the forced modes exist for the
/// property tests, which prove both produce byte-identical indexes.
enum class SparseRowStrategy {
  kAuto,
  kMergeOnly,     // always the inverted-index merge
  kPopcountOnly,  // always the blocked AND+popcount column scan
};

struct SparseCandidateOptions {
  /// Worker threads for the per-node row construction (rows are
  /// independent; the index is byte-identical for any thread count).
  uint32_t num_threads = 1;
  SparseRowStrategy strategy = SparseRowStrategy::kAuto;
  /// Cost-model factor of the per-node merge-vs-popcount choice under
  /// kAuto: the merge path is taken while the node's total inverted-list
  /// length is at most this multiple of the full column scan's word count.
  /// 0 (the default) derives the factor from the measured mean
  /// inverted-list occupancy — long lists make each merge step a random
  /// access over a large scratch working set, so the factor shrinks as
  /// occupancy grows (see ResolveMergeCostFactor). Tuning shifts time
  /// only; both paths produce byte-identical rows.
  uint64_t merge_cost_factor = 0;
};

/// Build statistics (aggregated over ordered (i, j) pairs, j != i; every
/// unordered pair is counted from both sides).
struct SparseIndexStats {
  /// Pairs whose 2x2 table was evaluated (c11 known > 0 on the merge path;
  /// all scanned columns on the popcount path).
  uint64_t pairs_visited = 0;
  /// Pairs eliminated without an IMI evaluation: never touched by the
  /// merge, or early-outed on zero co-infection by the popcount scan.
  uint64_t pairs_skipped = 0;
  uint32_t merge_rows = 0;
  uint32_t popcount_rows = 0;
};

class SparseCandidateIndex;

/// Symmetric CSR table of the pairwise co-infection counts c11 > 0: row i
/// holds every j != i that is co-infected with i in at least one process,
/// ascending by j, with the exact integer count. This is the integer
/// backbone of the sparse pipeline: the MI values of SparseCandidateIndex
/// are pure functions of (c11, marginals, beta), so keeping the counts
/// makes the index *delta-updatable* — appending a chunk of processes
/// merges the chunk's counts in (integers add exactly) and re-derives the
/// doubles, where the index alone could not absorb a beta change.
class CooccurrenceCounts {
 public:
  struct RowView {
    const uint32_t* neighbors = nullptr;
    const uint32_t* counts = nullptr;
    size_t size = 0;
  };

  uint32_t num_nodes() const { return num_nodes_; }
  uint32_t num_processes() const { return num_processes_; }
  size_t num_entries() const { return neighbors_.size(); }

  RowView Row(graph::NodeId i) const {
    RowView row;
    row.neighbors = neighbors_.data() + offsets_[i];
    row.counts = counts_.data() + offsets_[i];
    row.size = static_cast<size_t>(offsets_[i + 1] - offsets_[i]);
    return row;
  }

  /// Merges the counts of `chunk` (built over the appended processes of
  /// the same node set) into this table: per-row sorted merge, counts of
  /// shared pairs add, new pairs are inserted in order. Exactly equal to
  /// building from the concatenated processes. Strategy-row stats
  /// accumulate; visited/skipped are recomputed from the merged structure
  /// (diagnostics only — values and entries are what the differential
  /// suite pins).
  void Append(const CooccurrenceCounts& chunk);

  size_t ByteSize() const {
    return offsets_.size() * sizeof(uint64_t) +
           neighbors_.size() * sizeof(uint32_t) +
           counts_.size() * sizeof(uint32_t);
  }

  const SparseIndexStats& stats() const { return stats_; }

 private:
  friend CooccurrenceCounts BuildCooccurrenceCounts(
      const PackedStatuses& packed, const SparseCandidateOptions& options,
      MetricsRegistry* metrics);
  friend SparseCandidateIndex DeriveSparseCandidateIndex(
      const CooccurrenceCounts& cooccurrence,
      const std::vector<uint32_t>& marginals, MetricsRegistry* metrics);

  uint32_t num_nodes_ = 0;
  uint32_t num_processes_ = 0;
  std::vector<uint64_t> offsets_;  // num_nodes + 1
  std::vector<uint32_t> neighbors_;
  std::vector<uint32_t> counts_;
  SparseIndexStats stats_;
};

/// CSR index of the strictly positive pairwise infection-MI values: row i
/// holds every j != i with co-infection and InfectionMi > 0.0, ascending
/// by j, each with the exact double the dense ImiMatrix would store.
/// Symmetric (every unordered pair appears in both rows). Memory is
/// O(nnz), never O(n^2) — the artifact that breaks the dense wall.
class SparseCandidateIndex {
 public:
  struct RowView {
    const uint32_t* neighbors = nullptr;
    const double* values = nullptr;
    size_t size = 0;
  };

  uint32_t num_nodes() const { return num_nodes_; }
  uint32_t num_processes() const { return num_processes_; }

  /// Stored (i, j) entries over all rows (twice the number of unordered
  /// positive pairs).
  size_t num_entries() const { return neighbors_.size(); }

  RowView Row(graph::NodeId i) const {
    RowView row;
    row.neighbors = neighbors_.data() + offsets_[i];
    row.values = values_.data() + offsets_[i];
    row.size = static_cast<size_t>(offsets_[i + 1] - offsets_[i]);
    return row;
  }

  /// The stored value of pair (i, j), or 0.0 when the pair has no strictly
  /// positive infection MI (by the header invariant such a pair can never
  /// be a pruning candidate). O(log row size).
  double Get(graph::NodeId i, graph::NodeId j) const;

  /// The strictly positive values, each unordered pair once (i < j), in
  /// upper-triangle order — the K-means clustering input.
  std::vector<double> PositiveUpperTriangleValues() const;

  /// Payload bytes of offsets + neighbors + values; feeds the
  /// tends.mem.sparse_index_bytes gauge at allocation sites.
  size_t ByteSize() const {
    return offsets_.size() * sizeof(uint64_t) +
           neighbors_.size() * sizeof(uint32_t) +
           values_.size() * sizeof(double);
  }

  const SparseIndexStats& stats() const { return stats_; }

 private:
  friend SparseCandidateIndex DeriveSparseCandidateIndex(
      const CooccurrenceCounts& cooccurrence,
      const std::vector<uint32_t>& marginals, MetricsRegistry* metrics);

  uint32_t num_nodes_ = 0;
  uint32_t num_processes_ = 0;
  std::vector<uint64_t> offsets_;  // num_nodes + 1
  std::vector<uint32_t> neighbors_;
  std::vector<double> values_;
  SparseIndexStats stats_;
};

/// Builds the co-occurrence table from the packed columns. Per node,
/// either merges the inverted-index lists of the node's processes (cost =
/// sum of those list sizes) or falls back to a blocked AND+popcount scan
/// over all columns (cost = n * words per column) — whichever the cost
/// model predicts cheaper; the choice never changes the result, only the
/// time. Deterministic and byte-identical for any thread count and either
/// strategy. Sets the tends.mem.sparse_inverted_index_bytes and
/// tends.mem.cooccurrence_bytes gauges on `metrics` (may be null).
CooccurrenceCounts BuildCooccurrenceCounts(
    const PackedStatuses& packed, const SparseCandidateOptions& options = {},
    MetricsRegistry* metrics = nullptr);

/// Evaluates the infection MI of every stored pair of `cooccurrence`
/// (canonical (min-id, max-id) orientation; `marginals` must equal the
/// packed columns' InfectedCounts()) and keeps the strictly positive
/// entries. Byte-identical to BuildSparseCandidateIndex over the same
/// observations however the counts were obtained — one build or a chain
/// of Append()s. Sets the tends.mem.sparse_index_bytes gauge and
/// tends.counting.pairs_* counters on `metrics` (may be null).
SparseCandidateIndex DeriveSparseCandidateIndex(
    const CooccurrenceCounts& cooccurrence,
    const std::vector<uint32_t>& marginals, MetricsRegistry* metrics = nullptr);

/// Builds the sparse index from the packed columns and their marginal
/// infected counts: BuildCooccurrenceCounts then DeriveSparseCandidateIndex
/// (the one-shot path; a session that expects appends keeps the
/// intermediate CooccurrenceCounts artifact instead).
SparseCandidateIndex BuildSparseCandidateIndex(
    const PackedStatuses& packed, const std::vector<uint32_t>& marginals,
    const SparseCandidateOptions& options = {},
    MetricsRegistry* metrics = nullptr);

/// Bounded best-k selector over (value, id) candidates under the exact
/// ranking the dense pruning's partial_sort uses: value descending, id
/// ascending as the tie-break (a strict total order — ids are unique — so
/// "the top k" is well-defined and the kept set is deterministic even
/// under adversarial ties). Push is O(log k). Filtering at tau and then
/// keeping the top k reproduces the dense row scan's clipped candidate
/// set bit-for-bit.
class TopKCandidateHeap {
 public:
  explicit TopKCandidateHeap(uint32_t k) : k_(k) {}

  void Push(double value, graph::NodeId id);

  size_t size() const { return entries_.size(); }

  /// The retained ids sorted ascending — the deterministic processing
  /// order the parent search expects. Leaves the heap intact.
  std::vector<graph::NodeId> SortedIds() const;

 private:
  // a ranks strictly better than b.
  static bool Better(const std::pair<double, graph::NodeId>& a,
                     const std::pair<double, graph::NodeId>& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  }

  uint32_t k_;
  /// Heap ordered with Better as the "less" comparator, so the front is
  /// the worst retained candidate (the eviction point).
  std::vector<std::pair<double, graph::NodeId>> entries_;
};

}  // namespace tends::inference

#endif  // TENDS_INFERENCE_SPARSE_CANDIDATES_H_
