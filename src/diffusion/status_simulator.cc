#include "diffusion/status_simulator.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/parallel.h"
#include "diffusion/ic_model.h"
#include "diffusion/lt_model.h"
#include "diffusion/sim_scratch.h"
#include "diffusion/sir_model.h"

namespace tends::diffusion {

namespace {

/// Processes per parallel work unit: one packed word. Each status-matrix
/// row is private to its process, but the packed layout interleaves 64
/// processes into each word of every column — block ownership makes each
/// word single-writer without any synchronization.
constexpr uint32_t kProcessesPerBlock = 64;

}  // namespace

StatusOr<StatusObservations> SimulateStatuses(
    const graph::DirectedGraph& graph, const EdgeProbabilities& probabilities,
    const SimulationConfig& config, Rng& rng, MetricsRegistry* metrics) {
  TENDS_METRICS_STAGE(metrics, "simulate");
  TENDS_TRACE_SPAN(metrics, "simulate_statuses");
  TENDS_RETURN_IF_ERROR(
      internal::ValidateSimulationInputs(graph, probabilities, config));
  const uint32_t n = graph.num_nodes();
  const uint32_t beta = config.num_processes;
  const uint32_t num_sources = internal::NumSources(config, n);

  IndependentCascadeModel ic(graph, probabilities);
  LinearThresholdModel lt(graph, probabilities);
  SirModel sir(graph, probabilities,
               {.recovery_probability = config.sir_recovery_probability,
                .max_rounds = config.max_rounds});

  // Same streams as Simulate: process p forks stream p + 1, so the two
  // entry points generate identical data.
  std::vector<Rng> process_rngs;
  process_rngs.reserve(beta);
  for (uint32_t p = 0; p < beta; ++p) {
    process_rngs.push_back(rng.Fork(p + 1));
  }

  StatusMatrix statuses(beta, n);            // zero-filled rows
  inference::PackedStatuses packed(beta, n);  // zero-filled words
  const uint32_t num_blocks =
      (beta + kProcessesPerBlock - 1) / kProcessesPerBlock;
  std::vector<Status> failures(num_blocks);
  ParallelFor(config.num_threads, 0, num_blocks, [&](uint32_t block) {
    // One scratch per pool thread, warm across blocks and across calls.
    static thread_local SimScratch scratch;
    const uint32_t block_begin = block * kProcessesPerBlock;
    const uint32_t block_end =
        std::min(beta, block_begin + kProcessesPerBlock);
    for (uint32_t p = block_begin; p < block_end; ++p) {
      Rng& process_rng = process_rngs[p];
      std::vector<graph::NodeId> sources =
          process_rng.SampleWithoutReplacement(n, num_sources);
      uint8_t* row = statuses.MutableRow(p);
      Status status;
      switch (config.model) {
        case DiffusionModel::kIndependentCascade:
          status = ic.RunStatusesOnly(sources, process_rng, config.max_rounds,
                                      row, scratch);
          break;
        case DiffusionModel::kLinearThreshold:
          status = lt.RunStatusesOnly(sources, process_rng, config.max_rounds,
                                      row, scratch);
          break;
        case DiffusionModel::kSir:
          status = sir.RunStatusesOnly(sources, process_rng, row, scratch);
          break;
      }
      if (!status.ok()) {
        failures[block] = status;
        return;
      }
      // Scatter the row into word `block` of each infected node's packed
      // column. This thread owns that word for every column.
      const uint64_t bit = uint64_t{1} << (p % kProcessesPerBlock);
      uint32_t row_infections = 0;
      for (uint32_t v = 0; v < n; ++v) {
        if (row[v]) {
          packed.MutableColumn(v)[block] |= bit;
          ++row_infections;
        }
      }
      TENDS_METRIC_RECORD(metrics, "tends.sim.cascade_size", row_infections);
    }
  });
  // Blocks cover ascending process ranges, so the lowest failing block
  // holds the lowest failing process — the sequential error order.
  for (const Status& failure : failures) {
    if (!failure.ok()) return failure;
  }
  TENDS_METRIC_ADD(metrics, "tends.sim.processes", beta);
  TENDS_METRIC_ADD(metrics, "tends.sim.fast_path_runs", 1);
#if TENDS_METRICS_ENABLED
  if (metrics != nullptr) {
    uint64_t infections = 0;
    for (uint32_t v = 0; v < n; ++v) infections += packed.InfectedCount(v);
    metrics->GetCounter("tends.sim.infections").Add(infections);
  }
#endif
  return StatusObservations{std::move(statuses), std::move(packed)};
}

}  // namespace tends::diffusion
