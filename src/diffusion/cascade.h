#ifndef TENDS_DIFFUSION_CASCADE_H_
#define TENDS_DIFFUSION_CASCADE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace tends::diffusion {

/// Infection time of a node that was never infected in a process.
inline constexpr int32_t kNeverInfected = -1;

/// "No recorded infector": sources, never-infected nodes, and models that
/// have no single transmitting parent (e.g. Linear Threshold).
inline constexpr graph::NodeId kNoInfector = ~graph::NodeId{0};

/// Full record of one diffusion process: who started it, and when each node
/// became infected (discrete rounds; sources have time 0). The
/// timestamp-based baselines consume the times; TENDS sees only the derived
/// final statuses; LIFT sees sources + statuses; the PATH baseline consumes
/// the oracle transmission paths implied by `infector`.
struct Cascade {
  /// Initially infected nodes (infection time 0).
  std::vector<graph::NodeId> sources;
  /// infection_time[v] = round at which v got infected, or kNeverInfected.
  std::vector<int32_t> infection_time;
  /// infector[v] = the node whose transmission actually infected v in this
  /// process (IC model), or kNoInfector. Empty when the model does not
  /// track infectors.
  std::vector<graph::NodeId> infector;

  /// Number of nodes with infection_time >= 0.
  uint32_t NumInfected() const;

  /// True iff v was infected.
  bool Infected(graph::NodeId v) const {
    return infection_time[v] != kNeverInfected;
  }

  /// Final 0/1 statuses (the only thing TENDS observes).
  std::vector<uint8_t> FinalStatuses() const;

  /// True iff infector information was recorded.
  bool HasInfectors() const { return !infector.empty(); }
};

/// Extracts all transmission paths of exactly `length` nodes from the
/// recorded infector chains of `cascades` (e.g. length 3 yields the
/// "path-connected node triples" of the PATH approach). Each trace is a
/// node sequence (u_1 -> ... -> u_length) where each u_{k+1} was actually
/// infected by u_k. Cascades without infector records are skipped.
std::vector<std::vector<graph::NodeId>> ExtractPathTraces(
    const std::vector<Cascade>& cascades, uint32_t length);

/// Final infection statuses of all nodes across beta diffusion processes:
/// the paper's observation set S. Row-major beta x n matrix of 0/1 bytes.
class StatusMatrix {
 public:
  StatusMatrix() = default;
  StatusMatrix(uint32_t num_processes, uint32_t num_nodes);

  uint32_t num_processes() const { return num_processes_; }
  uint32_t num_nodes() const { return num_nodes_; }

  /// Payload bytes of the raw matrix (beta * n); feeds the
  /// tends.mem.status_matrix_bytes gauge at inference entry points.
  size_t ByteSize() const { return data_.size(); }

  uint8_t Get(uint32_t process, graph::NodeId node) const {
    return data_[static_cast<size_t>(process) * num_nodes_ + node];
  }
  void Set(uint32_t process, graph::NodeId node, uint8_t status) {
    data_[static_cast<size_t>(process) * num_nodes_ + node] = status;
  }

  /// Pointer to the row of process `process` (n bytes).
  const uint8_t* Row(uint32_t process) const {
    return data_.data() + static_cast<size_t>(process) * num_nodes_;
  }

  /// Mutable row pointer for producers that fill the matrix in place (all
  /// bytes are zero after construction). Rows of distinct processes may be
  /// written from different threads concurrently.
  uint8_t* MutableRow(uint32_t process) {
    return data_.data() + static_cast<size_t>(process) * num_nodes_;
  }

  /// Number of processes in which `node` ended up infected.
  uint32_t InfectionCount(graph::NodeId node) const;

  /// Appends every process row of `chunk` after this matrix's rows (the
  /// streaming-ingest primitive behind InferenceSession::AppendStatuses).
  /// Both matrices must cover the same node set; the result is byte-for-byte
  /// the row-major concatenation of the two observation sets. An empty
  /// `this` (default-constructed) adopts the chunk's node count.
  void AppendRows(const StatusMatrix& chunk);

 private:
  uint32_t num_processes_ = 0;
  uint32_t num_nodes_ = 0;
  std::vector<uint8_t> data_;
};

/// Builds the status matrix from recorded cascades (all cascades must have
/// the same node count).
StatusMatrix StatusesFromCascades(const std::vector<Cascade>& cascades);

}  // namespace tends::diffusion

#endif  // TENDS_DIFFUSION_CASCADE_H_
