#ifndef TENDS_DIFFUSION_VALIDATION_H_
#define TENDS_DIFFUSION_VALIDATION_H_

#include "common/status.h"
#include "diffusion/simulator.h"

namespace tends::diffusion {

/// Up-front validation of inference inputs, shared by every algorithm so
/// that garbage is rejected with a precise kInvalidArgument message at the
/// API boundary instead of being computed on.
///
/// Rejects: empty matrices (no nodes or no processes) and — when
/// `reject_degenerate_columns` — columns that are all-0 or all-1 across
/// every process. A constant column carries zero information: its IMI with
/// every other node is 0 and its conditional likelihood is degenerate, so
/// status-only algorithms would silently emit an unconstrained guess for
/// that node. The message names the first offending node.
Status ValidateStatusMatrix(const StatusMatrix& statuses,
                            bool reject_degenerate_columns);

/// Validates recorded cascades for the timestamp-consuming baselines.
/// Rejects: no cascades, ragged rows (a cascade whose infection_time has a
/// different length than the others / than `expected_nodes`), sources out
/// of range, and sources with a nonzero infection time. Messages name the
/// cascade index and the offending value.
Status ValidateCascades(const std::vector<Cascade>& cascades,
                        uint32_t expected_nodes);

}  // namespace tends::diffusion

#endif  // TENDS_DIFFUSION_VALIDATION_H_
