#ifndef TENDS_DIFFUSION_NOISE_H_
#define TENDS_DIFFUSION_NOISE_H_

#include "common/random.h"
#include "common/statusor.h"
#include "diffusion/cascade.h"

namespace tends::diffusion {

/// Observation-noise model for final infection statuses (an extension
/// beyond the paper's noiseless setting, motivated by its introduction:
/// monitoring uncertainty and incubation periods corrupt observations).
struct StatusNoiseOptions {
  /// Probability that a truly-infected node is observed uninfected
  /// (missed detection, e.g. asymptomatic cases).
  double miss_probability = 0.0;
  /// Probability that a truly-uninfected node is observed infected
  /// (false alarm, e.g. misdiagnosis).
  double false_alarm_probability = 0.0;
};

/// Returns a copy of `statuses` with each entry flipped independently
/// according to the noise model. Deterministic given `rng`.
StatusOr<StatusMatrix> ApplyStatusNoise(const StatusMatrix& statuses,
                                        const StatusNoiseOptions& options,
                                        Rng& rng);

}  // namespace tends::diffusion

#endif  // TENDS_DIFFUSION_NOISE_H_
