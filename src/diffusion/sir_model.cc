#include "diffusion/sir_model.h"

#include "common/stringutil.h"

namespace tends::diffusion {

SirModel::SirModel(const graph::DirectedGraph& graph,
                   const EdgeProbabilities& probabilities, SirOptions options)
    : graph_(graph), probabilities_(probabilities), options_(options) {}

StatusOr<Cascade> SirModel::Run(const std::vector<graph::NodeId>& sources,
                                Rng& rng) const {
  if (options_.recovery_probability <= 0.0 ||
      options_.recovery_probability > 1.0) {
    return Status::InvalidArgument("recovery_probability must be in (0,1]");
  }
  const uint32_t n = graph_.num_nodes();
  Cascade cascade;
  cascade.infection_time.assign(n, kNeverInfected);
  cascade.infector.assign(n, kNoInfector);
  cascade.sources = sources;
  std::vector<graph::NodeId> infectious;
  infectious.reserve(sources.size());
  for (graph::NodeId s : sources) {
    if (s >= n) {
      return Status::InvalidArgument(StrFormat("source %u out of range", s));
    }
    if (cascade.infection_time[s] != kNeverInfected) {
      return Status::InvalidArgument(StrFormat("duplicate source %u", s));
    }
    cascade.infection_time[s] = 0;
    infectious.push_back(s);
  }

  int32_t round = 0;
  std::vector<graph::NodeId> still_infectious;
  while (!infectious.empty() &&
         (options_.max_rounds == 0 ||
          round < static_cast<int32_t>(options_.max_rounds))) {
    ++round;
    still_infectious.clear();
    // Transmission phase: every infectious node attacks its susceptible
    // children once this round.
    size_t previously_infectious = infectious.size();
    for (size_t idx = 0; idx < previously_infectious; ++idx) {
      graph::NodeId u = infectious[idx];
      uint64_t edge_index = graph_.OutEdgeBegin(u);
      for (graph::NodeId v : graph_.OutNeighbors(u)) {
        if (cascade.infection_time[v] == kNeverInfected &&
            rng.NextBernoulli(probabilities_.GetByIndex(edge_index))) {
          cascade.infection_time[v] = round;
          cascade.infector[v] = u;
          infectious.push_back(v);  // infectious from the next round on
        }
        ++edge_index;
      }
    }
    // Recovery phase: each node infectious during this round may recover;
    // nodes infected this round have not spread yet and stay infectious.
    for (size_t idx = 0; idx < infectious.size(); ++idx) {
      graph::NodeId u = infectious[idx];
      const bool spread_this_round = idx < previously_infectious;
      if (spread_this_round && rng.NextBernoulli(options_.recovery_probability)) {
        continue;  // recovered
      }
      still_infectious.push_back(u);
    }
    infectious.swap(still_infectious);
  }
  return cascade;
}

Status SirModel::RunStatusesOnly(const std::vector<graph::NodeId>& sources,
                                 Rng& rng, uint8_t* infected,
                                 SimScratch& scratch) const {
  if (options_.recovery_probability <= 0.0 ||
      options_.recovery_probability > 1.0) {
    return Status::InvalidArgument("recovery_probability must be in (0,1]");
  }
  const uint32_t n = graph_.num_nodes();
  std::vector<graph::NodeId>& infectious = scratch.frontier;
  std::vector<graph::NodeId>& still_infectious = scratch.next;
  infectious.clear();
  for (graph::NodeId s : sources) {
    if (s >= n) {
      return Status::InvalidArgument(StrFormat("source %u out of range", s));
    }
    if (infected[s]) {
      return Status::InvalidArgument(StrFormat("duplicate source %u", s));
    }
    infected[s] = 1;
    infectious.push_back(s);
  }

  uint32_t round = 0;
  while (!infectious.empty() &&
         (options_.max_rounds == 0 || round < options_.max_rounds)) {
    ++round;
    still_infectious.clear();
    // Transmission phase, identical draws to Run (the `!infected[v]` test
    // matches Run's kNeverInfected test).
    size_t previously_infectious = infectious.size();
    for (size_t idx = 0; idx < previously_infectious; ++idx) {
      graph::NodeId u = infectious[idx];
      uint64_t edge_index = graph_.OutEdgeBegin(u);
      for (graph::NodeId v : graph_.OutNeighbors(u)) {
        if (!infected[v] &&
            rng.NextBernoulli(probabilities_.GetByIndex(edge_index))) {
          infected[v] = 1;
          infectious.push_back(v);  // infectious from the next round on
        }
        ++edge_index;
      }
    }
    // Recovery phase, identical draws to Run.
    for (size_t idx = 0; idx < infectious.size(); ++idx) {
      graph::NodeId u = infectious[idx];
      const bool spread_this_round = idx < previously_infectious;
      if (spread_this_round &&
          rng.NextBernoulli(options_.recovery_probability)) {
        continue;  // recovered
      }
      still_infectious.push_back(u);
    }
    infectious.swap(still_infectious);
  }
  return Status::OK();
}

}  // namespace tends::diffusion
