#include "diffusion/ic_model.h"

#include "common/stringutil.h"

namespace tends::diffusion {

IndependentCascadeModel::IndependentCascadeModel(
    const graph::DirectedGraph& graph, const EdgeProbabilities& probabilities)
    : graph_(graph), probabilities_(probabilities) {}

StatusOr<Cascade> IndependentCascadeModel::Run(
    const std::vector<graph::NodeId>& sources, Rng& rng,
    uint32_t max_rounds) const {
  const uint32_t n = graph_.num_nodes();
  Cascade cascade;
  cascade.infection_time.assign(n, kNeverInfected);
  cascade.infector.assign(n, kNoInfector);
  cascade.sources = sources;
  std::vector<graph::NodeId> frontier;
  frontier.reserve(sources.size());
  for (graph::NodeId s : sources) {
    if (s >= n) {
      return Status::InvalidArgument(StrFormat("source %u out of range", s));
    }
    if (cascade.infection_time[s] != kNeverInfected) {
      return Status::InvalidArgument(StrFormat("duplicate source %u", s));
    }
    cascade.infection_time[s] = 0;
    frontier.push_back(s);
  }

  int32_t round = 0;
  std::vector<graph::NodeId> next;
  while (!frontier.empty() &&
         (max_rounds == 0 || round < static_cast<int32_t>(max_rounds))) {
    ++round;
    next.clear();
    for (graph::NodeId u : frontier) {
      uint64_t edge_index = graph_.OutEdgeBegin(u);
      for (graph::NodeId v : graph_.OutNeighbors(u)) {
        if (cascade.infection_time[v] == kNeverInfected &&
            rng.NextBernoulli(probabilities_.GetByIndex(edge_index))) {
          cascade.infection_time[v] = round;
          cascade.infector[v] = u;
          next.push_back(v);
        }
        ++edge_index;
      }
    }
    frontier.swap(next);
  }
  return cascade;
}

Status IndependentCascadeModel::RunStatusesOnly(
    const std::vector<graph::NodeId>& sources, Rng& rng, uint32_t max_rounds,
    uint8_t* infected, SimScratch& scratch) const {
  const uint32_t n = graph_.num_nodes();
  std::vector<graph::NodeId>& frontier = scratch.frontier;
  std::vector<graph::NodeId>& next = scratch.next;
  frontier.clear();
  for (graph::NodeId s : sources) {
    if (s >= n) {
      return Status::InvalidArgument(StrFormat("source %u out of range", s));
    }
    if (infected[s]) {
      return Status::InvalidArgument(StrFormat("duplicate source %u", s));
    }
    infected[s] = 1;
    frontier.push_back(s);
  }

  uint32_t round = 0;
  while (!frontier.empty() && (max_rounds == 0 || round < max_rounds)) {
    ++round;
    next.clear();
    for (graph::NodeId u : frontier) {
      uint64_t edge_index = graph_.OutEdgeBegin(u);
      for (graph::NodeId v : graph_.OutNeighbors(u)) {
        // Same candidate set, edge order, and Bernoulli draws as Run:
        // `!infected[v]` is true exactly when Run sees kNeverInfected.
        if (!infected[v] &&
            rng.NextBernoulli(probabilities_.GetByIndex(edge_index))) {
          infected[v] = 1;
          next.push_back(v);
        }
        ++edge_index;
      }
    }
    frontier.swap(next);
  }
  return Status::OK();
}

}  // namespace tends::diffusion
