#ifndef TENDS_DIFFUSION_IO_H_
#define TENDS_DIFFUSION_IO_H_

#include <iosfwd>
#include <string>

#include "common/io_hardening.h"
#include "common/statusor.h"
#include "diffusion/simulator.h"

namespace tends::diffusion {

/// Text formats for diffusion observations, used by the CLI tools.
///
/// Full observations ("tends-observations v1"): per process one block
///   process <index>
///   sources <id> <id> ...
///   times <t_0> <t_1> ... <t_{n-1}>        (-1 = never infected)
/// Final statuses are derived from the times on load.
///
/// Status-only matrix ("tends-statuses v1"): one row of space-separated
/// 0/1 per process — exactly the minimal input TENDS needs.
///
/// Readers take IoReadOptions: in strict mode (default) any malformed
/// input fails the read with a Corruption status naming the 1-based line
/// and the offending token; in permissive mode corrupt rows/blocks are
/// skipped (and truncation tolerated), every skip is tallied in `report`
/// when non-null, and the read fails only when nothing recoverable
/// remains.
Status WriteObservations(const DiffusionObservations& observations,
                         std::ostream& out);
Status WriteObservationsFile(const DiffusionObservations& observations,
                             const std::string& path);
StatusOr<DiffusionObservations> ReadObservations(
    std::istream& in, const IoReadOptions& options = {},
    CorruptionReport* report = nullptr);
StatusOr<DiffusionObservations> ReadObservationsFile(
    const std::string& path, const IoReadOptions& options = {},
    CorruptionReport* report = nullptr);

Status WriteStatusMatrix(const StatusMatrix& statuses, std::ostream& out);
Status WriteStatusMatrixFile(const StatusMatrix& statuses,
                             const std::string& path);
StatusOr<StatusMatrix> ReadStatusMatrix(std::istream& in,
                                        const IoReadOptions& options = {},
                                        CorruptionReport* report = nullptr);
StatusOr<StatusMatrix> ReadStatusMatrixFile(const std::string& path,
                                            const IoReadOptions& options = {},
                                            CorruptionReport* report = nullptr);

}  // namespace tends::diffusion

#endif  // TENDS_DIFFUSION_IO_H_
