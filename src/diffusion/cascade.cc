#include "diffusion/cascade.h"

#include "common/logging.h"

namespace tends::diffusion {

uint32_t Cascade::NumInfected() const {
  uint32_t count = 0;
  for (int32_t t : infection_time) {
    if (t != kNeverInfected) ++count;
  }
  return count;
}

std::vector<uint8_t> Cascade::FinalStatuses() const {
  std::vector<uint8_t> statuses(infection_time.size());
  for (size_t i = 0; i < infection_time.size(); ++i) {
    statuses[i] = infection_time[i] != kNeverInfected ? 1 : 0;
  }
  return statuses;
}

std::vector<std::vector<graph::NodeId>> ExtractPathTraces(
    const std::vector<Cascade>& cascades, uint32_t length) {
  std::vector<std::vector<graph::NodeId>> traces;
  if (length < 2) return traces;
  for (const Cascade& cascade : cascades) {
    if (!cascade.HasInfectors()) continue;
    const uint32_t n = static_cast<uint32_t>(cascade.infector.size());
    // Walk the infector chain backwards from every infected node; a node
    // at the end of a chain of >= length nodes yields one trace.
    for (uint32_t v = 0; v < n; ++v) {
      if (!cascade.Infected(v)) continue;
      std::vector<graph::NodeId> chain = {v};
      graph::NodeId current = v;
      while (chain.size() < length &&
             cascade.infector[current] != kNoInfector) {
        current = cascade.infector[current];
        chain.push_back(current);
      }
      if (chain.size() == length) {
        // Reverse so the trace runs in transmission order.
        std::vector<graph::NodeId> trace(chain.rbegin(), chain.rend());
        traces.push_back(std::move(trace));
      }
    }
  }
  return traces;
}

StatusMatrix::StatusMatrix(uint32_t num_processes, uint32_t num_nodes)
    : num_processes_(num_processes),
      num_nodes_(num_nodes),
      data_(static_cast<size_t>(num_processes) * num_nodes, 0) {}

uint32_t StatusMatrix::InfectionCount(graph::NodeId node) const {
  uint32_t count = 0;
  for (uint32_t p = 0; p < num_processes_; ++p) count += Get(p, node);
  return count;
}

void StatusMatrix::AppendRows(const StatusMatrix& chunk) {
  if (num_processes_ == 0 && num_nodes_ == 0) {
    num_nodes_ = chunk.num_nodes_;
  }
  TENDS_CHECK(chunk.num_nodes_ == num_nodes_)
      << "appended chunk covers " << chunk.num_nodes_
      << " nodes, this matrix covers " << num_nodes_;
  data_.insert(data_.end(), chunk.data_.begin(), chunk.data_.end());
  num_processes_ += chunk.num_processes_;
}

StatusMatrix StatusesFromCascades(const std::vector<Cascade>& cascades) {
  if (cascades.empty()) return StatusMatrix();
  const uint32_t n = static_cast<uint32_t>(cascades[0].infection_time.size());
  StatusMatrix matrix(static_cast<uint32_t>(cascades.size()), n);
  for (uint32_t p = 0; p < cascades.size(); ++p) {
    TENDS_CHECK(cascades[p].infection_time.size() == n)
        << "cascade node-count mismatch";
    for (uint32_t v = 0; v < n; ++v) {
      matrix.Set(p, v, cascades[p].Infected(v) ? 1 : 0);
    }
  }
  return matrix;
}

}  // namespace tends::diffusion
