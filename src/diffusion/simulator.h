#ifndef TENDS_DIFFUSION_SIMULATOR_H_
#define TENDS_DIFFUSION_SIMULATOR_H_

#include <vector>

#include "common/random.h"
#include "common/statusor.h"
#include "diffusion/cascade.h"
#include "diffusion/propagation.h"
#include "graph/graph.h"

namespace tends {
class MetricsRegistry;
}  // namespace tends

namespace tends::diffusion {

enum class DiffusionModel {
  kIndependentCascade,
  kLinearThreshold,
  /// Susceptible-Infectious-Recovered (sir_model.h): nodes stay
  /// infectious for a geometric number of rounds governed by
  /// SimulationConfig::sir_recovery_probability.
  kSir,
};

/// Configuration of the paper's infection-data generation (§V-A).
struct SimulationConfig {
  /// Number of diffusion processes (the paper's β).
  uint32_t num_processes = 150;
  /// Fraction of nodes initially infected in each process (the paper's α);
  /// the source count is max(1, round(alpha * n)).
  double initial_infection_ratio = 0.15;
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  /// Bound on diffusion rounds per process (0 = until quiescence).
  uint32_t max_rounds = 0;
  /// kSir only: per-round probability that an infectious node recovers
  /// (geometric infectious period with mean 1/p; 1.0 reduces SIR to IC).
  double sir_recovery_probability = 0.5;
  /// Threads simulating processes concurrently (must be > 0; 1 =
  /// sequential). Each process draws from its own pre-forked RNG stream,
  /// so the observations are byte-identical at any thread count.
  uint32_t num_threads = 1;
};

/// Everything observed from a batch of simulated diffusion processes. The
/// inference algorithms consume different slices of it:
///   TENDS    -> statuses only,
///   NetRate  -> cascades (infection timestamps),
///   MulTree  -> cascades (infection timestamps),
///   LIFT     -> statuses + per-process sources.
struct DiffusionObservations {
  std::vector<Cascade> cascades;
  StatusMatrix statuses;

  uint32_t num_processes() const { return statuses.num_processes(); }
  uint32_t num_nodes() const { return statuses.num_nodes(); }
};

/// Runs `config.num_processes` independent diffusion processes on `graph`
/// with uniformly random source sets and records all observations.
/// Deterministic given `rng` (each process gets a forked stream).
///
/// `metrics` (may be null) receives stage "simulate" plus counters
/// `tends.sim.processes` / `tends.sim.infections` and histogram
/// `tends.sim.cascade_size`; it never affects the simulated data.
StatusOr<DiffusionObservations> Simulate(const graph::DirectedGraph& graph,
                                         const EdgeProbabilities& probabilities,
                                         const SimulationConfig& config,
                                         Rng& rng,
                                         MetricsRegistry* metrics = nullptr);

namespace internal {

/// Input validation shared by Simulate and SimulateStatuses
/// (status_simulator.h), so both entry points reject exactly the same
/// configurations with the same errors.
Status ValidateSimulationInputs(const graph::DirectedGraph& graph,
                                const EdgeProbabilities& probabilities,
                                const SimulationConfig& config);

/// The paper's source count: max(1, round(alpha * n)).
uint32_t NumSources(const SimulationConfig& config, uint32_t num_nodes);

}  // namespace internal

}  // namespace tends::diffusion

#endif  // TENDS_DIFFUSION_SIMULATOR_H_
