#ifndef TENDS_DIFFUSION_SIMULATOR_H_
#define TENDS_DIFFUSION_SIMULATOR_H_

#include <vector>

#include "common/random.h"
#include "common/statusor.h"
#include "diffusion/cascade.h"
#include "diffusion/propagation.h"
#include "graph/graph.h"

namespace tends {
class MetricsRegistry;
}  // namespace tends

namespace tends::diffusion {

enum class DiffusionModel {
  kIndependentCascade,
  kLinearThreshold,
};

/// Configuration of the paper's infection-data generation (§V-A).
struct SimulationConfig {
  /// Number of diffusion processes (the paper's β).
  uint32_t num_processes = 150;
  /// Fraction of nodes initially infected in each process (the paper's α);
  /// the source count is max(1, round(alpha * n)).
  double initial_infection_ratio = 0.15;
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  /// Bound on diffusion rounds per process (0 = until quiescence).
  uint32_t max_rounds = 0;
};

/// Everything observed from a batch of simulated diffusion processes. The
/// inference algorithms consume different slices of it:
///   TENDS    -> statuses only,
///   NetRate  -> cascades (infection timestamps),
///   MulTree  -> cascades (infection timestamps),
///   LIFT     -> statuses + per-process sources.
struct DiffusionObservations {
  std::vector<Cascade> cascades;
  StatusMatrix statuses;

  uint32_t num_processes() const { return statuses.num_processes(); }
  uint32_t num_nodes() const { return statuses.num_nodes(); }
};

/// Runs `config.num_processes` independent diffusion processes on `graph`
/// with uniformly random source sets and records all observations.
/// Deterministic given `rng` (each process gets a forked stream).
///
/// `metrics` (may be null) receives stage "simulate" plus counters
/// `tends.sim.processes` / `tends.sim.infections` and histogram
/// `tends.sim.cascade_size`; it never affects the simulated data.
StatusOr<DiffusionObservations> Simulate(const graph::DirectedGraph& graph,
                                         const EdgeProbabilities& probabilities,
                                         const SimulationConfig& config,
                                         Rng& rng,
                                         MetricsRegistry* metrics = nullptr);

}  // namespace tends::diffusion

#endif  // TENDS_DIFFUSION_SIMULATOR_H_
