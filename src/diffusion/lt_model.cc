#include "diffusion/lt_model.h"

#include <algorithm>

#include "common/stringutil.h"

namespace tends::diffusion {

LinearThresholdModel::LinearThresholdModel(
    const graph::DirectedGraph& graph, const EdgeProbabilities& probabilities)
    : graph_(graph) {
  // Sum incoming raw probabilities per node, then scale each node's
  // incoming weights to sum to min(1, raw_sum).
  const uint32_t n = graph_.num_nodes();
  std::vector<double> in_sum(n, 0.0);
  for (uint32_t u = 0; u < n; ++u) {
    uint64_t edge_index = graph_.OutEdgeBegin(u);
    for (graph::NodeId v : graph_.OutNeighbors(u)) {
      in_sum[v] += probabilities.GetByIndex(edge_index);
      ++edge_index;
    }
  }
  normalized_weight_.resize(graph_.num_edges());
  for (uint32_t u = 0; u < n; ++u) {
    uint64_t edge_index = graph_.OutEdgeBegin(u);
    for (graph::NodeId v : graph_.OutNeighbors(u)) {
      double raw = probabilities.GetByIndex(edge_index);
      double scale = in_sum[v] > 1.0 ? 1.0 / in_sum[v] : 1.0;
      normalized_weight_[edge_index] = raw * scale;
      ++edge_index;
    }
  }
}

StatusOr<Cascade> LinearThresholdModel::Run(
    const std::vector<graph::NodeId>& sources, Rng& rng,
    uint32_t max_rounds) const {
  const uint32_t n = graph_.num_nodes();
  Cascade cascade;
  cascade.infection_time.assign(n, kNeverInfected);
  cascade.sources = sources;
  std::vector<double> pressure(n, 0.0);  // weight-sum of infected parents
  std::vector<double> threshold(n);
  for (uint32_t v = 0; v < n; ++v) {
    // Uniform in (0, 1]: a zero threshold would infect nodes spontaneously.
    threshold[v] = 1.0 - rng.NextDouble();
  }
  std::vector<graph::NodeId> frontier;
  for (graph::NodeId s : sources) {
    if (s >= n) {
      return Status::InvalidArgument(StrFormat("source %u out of range", s));
    }
    if (cascade.infection_time[s] != kNeverInfected) {
      return Status::InvalidArgument(StrFormat("duplicate source %u", s));
    }
    cascade.infection_time[s] = 0;
    frontier.push_back(s);
  }
  int32_t round = 0;
  std::vector<graph::NodeId> next;
  while (!frontier.empty() &&
         (max_rounds == 0 || round < static_cast<int32_t>(max_rounds))) {
    ++round;
    next.clear();
    for (graph::NodeId u : frontier) {
      uint64_t edge_index = graph_.OutEdgeBegin(u);
      for (graph::NodeId v : graph_.OutNeighbors(u)) {
        if (cascade.infection_time[v] == kNeverInfected) {
          pressure[v] += normalized_weight_[edge_index];
          if (pressure[v] >= threshold[v]) {
            cascade.infection_time[v] = round;
            next.push_back(v);
          }
        }
        ++edge_index;
      }
    }
    frontier.swap(next);
  }
  return cascade;
}

Status LinearThresholdModel::RunStatusesOnly(
    const std::vector<graph::NodeId>& sources, Rng& rng, uint32_t max_rounds,
    uint8_t* infected, SimScratch& scratch) const {
  const uint32_t n = graph_.num_nodes();
  scratch.pressure.assign(n, 0.0);
  scratch.threshold.resize(n);
  // Thresholds are drawn before source validation, matching Run's RNG
  // consumption order exactly.
  for (uint32_t v = 0; v < n; ++v) {
    scratch.threshold[v] = 1.0 - rng.NextDouble();
  }
  std::vector<graph::NodeId>& frontier = scratch.frontier;
  std::vector<graph::NodeId>& next = scratch.next;
  frontier.clear();
  for (graph::NodeId s : sources) {
    if (s >= n) {
      return Status::InvalidArgument(StrFormat("source %u out of range", s));
    }
    if (infected[s]) {
      return Status::InvalidArgument(StrFormat("duplicate source %u", s));
    }
    infected[s] = 1;
    frontier.push_back(s);
  }
  uint32_t round = 0;
  while (!frontier.empty() && (max_rounds == 0 || round < max_rounds)) {
    ++round;
    next.clear();
    for (graph::NodeId u : frontier) {
      uint64_t edge_index = graph_.OutEdgeBegin(u);
      for (graph::NodeId v : graph_.OutNeighbors(u)) {
        if (!infected[v]) {
          scratch.pressure[v] += normalized_weight_[edge_index];
          if (scratch.pressure[v] >= scratch.threshold[v]) {
            infected[v] = 1;
            next.push_back(v);
          }
        }
        ++edge_index;
      }
    }
    frontier.swap(next);
  }
  return Status::OK();
}

}  // namespace tends::diffusion
