#ifndef TENDS_DIFFUSION_SIR_MODEL_H_
#define TENDS_DIFFUSION_SIR_MODEL_H_

#include <vector>

#include "common/random.h"
#include "common/statusor.h"
#include "diffusion/cascade.h"
#include "diffusion/propagation.h"
#include "diffusion/sim_scratch.h"
#include "graph/graph.h"

namespace tends::diffusion {

/// Options of the SIR diffusion model.
struct SirOptions {
  /// Per-round probability that an infectious node recovers (geometric
  /// infectious period with mean 1/recovery_probability). 1.0 makes each
  /// node infectious for exactly one round, which is the Independent
  /// Cascade model.
  double recovery_probability = 0.5;
  /// Bound on rounds (0 = until no node is infectious).
  uint32_t max_rounds = 0;
};

/// Discrete-round Susceptible-Infectious-Recovered model (an extension of
/// the paper's IC setting toward its epidemic-prevention motivation):
/// while a node is infectious, it attempts to infect each susceptible
/// child once per round with the edge's propagation probability; after
/// each round it recovers with `recovery_probability` and stops spreading.
///
/// The recorded Cascade's statuses mean "ever infected" — exactly what an
/// end-of-outbreak serological survey observes — so TENDS and the other
/// status-only consumers run on SIR data unchanged. Infection times are
/// first-infection rounds, and the true infector is recorded per node.
class SirModel {
 public:
  SirModel(const graph::DirectedGraph& graph,
           const EdgeProbabilities& probabilities, SirOptions options = {});

  /// Runs one outbreak from the given initially infectious nodes.
  StatusOr<Cascade> Run(const std::vector<graph::NodeId>& sources,
                        Rng& rng) const;

  /// Statuses-only fast path: same transmission and recovery draws in the
  /// same RNG order as Run, writing only final ever-infected flags into
  /// `infected` (num_nodes bytes, all zero on entry); frontier buffers are
  /// reused through `scratch`. Byte-identical to Run(...).FinalStatuses().
  Status RunStatusesOnly(const std::vector<graph::NodeId>& sources, Rng& rng,
                         uint8_t* infected, SimScratch& scratch) const;

 private:
  const graph::DirectedGraph& graph_;
  const EdgeProbabilities& probabilities_;
  SirOptions options_;
};

}  // namespace tends::diffusion

#endif  // TENDS_DIFFUSION_SIR_MODEL_H_
