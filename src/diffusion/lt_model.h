#ifndef TENDS_DIFFUSION_LT_MODEL_H_
#define TENDS_DIFFUSION_LT_MODEL_H_

#include <vector>

#include "common/random.h"
#include "common/statusor.h"
#include "diffusion/cascade.h"
#include "diffusion/propagation.h"
#include "diffusion/sim_scratch.h"
#include "graph/graph.h"

namespace tends::diffusion {

/// Discrete-round Linear Threshold model (Kempe, Kleinberg & Tardos 2003),
/// provided as an extension beyond the paper's IC setup so the inference
/// algorithms can be exercised under a different diffusion dynamic.
///
/// Edge weights are the propagation probabilities normalized per receiving
/// node so that incoming weights sum to at most 1; each run draws a uniform
/// threshold per node, and an uninfected node becomes infected in the round
/// where the weight-sum of its infected in-neighbors reaches its threshold.
class LinearThresholdModel {
 public:
  LinearThresholdModel(const graph::DirectedGraph& graph,
                       const EdgeProbabilities& probabilities);

  StatusOr<Cascade> Run(const std::vector<graph::NodeId>& sources, Rng& rng,
                        uint32_t max_rounds = 0) const;

  /// Statuses-only fast path: same thresholds, activation decisions, and
  /// RNG consumption order as Run, writing only final 0/1 flags into
  /// `infected` (num_nodes bytes, all zero on entry). The per-node
  /// pressure/threshold arrays live in `scratch` and are reused across
  /// calls. Byte-identical to Run(...).FinalStatuses().
  Status RunStatusesOnly(const std::vector<graph::NodeId>& sources, Rng& rng,
                         uint32_t max_rounds, uint8_t* infected,
                         SimScratch& scratch) const;

 private:
  const graph::DirectedGraph& graph_;
  /// normalized_weight_[EdgeIndex(u, v)] = influence weight of u on v.
  std::vector<double> normalized_weight_;
};

}  // namespace tends::diffusion

#endif  // TENDS_DIFFUSION_LT_MODEL_H_
