#ifndef TENDS_DIFFUSION_IC_MODEL_H_
#define TENDS_DIFFUSION_IC_MODEL_H_

#include <vector>

#include "common/random.h"
#include "common/statusor.h"
#include "diffusion/cascade.h"
#include "diffusion/propagation.h"
#include "graph/graph.h"

namespace tends::diffusion {

/// Discrete-round Independent Cascade model (Kempe, Kleinberg & Tardos
/// 2003), matching the paper's infection-data setup: "each infected node
/// tries to infect its uninfected child nodes with a given propagation
/// probability". Each edge gets exactly one activation attempt, in the
/// round after its source becomes infected.
class IndependentCascadeModel {
 public:
  /// Both references must outlive the model.
  IndependentCascadeModel(const graph::DirectedGraph& graph,
                          const EdgeProbabilities& probabilities);

  /// Runs one diffusion process from the given initially infected nodes.
  /// Sources must be distinct and in range. `max_rounds` bounds the number
  /// of rounds (0 = unbounded; the process always terminates because each
  /// edge fires at most once).
  StatusOr<Cascade> Run(const std::vector<graph::NodeId>& sources, Rng& rng,
                        uint32_t max_rounds = 0) const;

 private:
  const graph::DirectedGraph& graph_;
  const EdgeProbabilities& probabilities_;
};

}  // namespace tends::diffusion

#endif  // TENDS_DIFFUSION_IC_MODEL_H_
