#ifndef TENDS_DIFFUSION_IC_MODEL_H_
#define TENDS_DIFFUSION_IC_MODEL_H_

#include <vector>

#include "common/random.h"
#include "common/statusor.h"
#include "diffusion/cascade.h"
#include "diffusion/propagation.h"
#include "diffusion/sim_scratch.h"
#include "graph/graph.h"

namespace tends::diffusion {

/// Discrete-round Independent Cascade model (Kempe, Kleinberg & Tardos
/// 2003), matching the paper's infection-data setup: "each infected node
/// tries to infect its uninfected child nodes with a given propagation
/// probability". Each edge gets exactly one activation attempt, in the
/// round after its source becomes infected.
class IndependentCascadeModel {
 public:
  /// Both references must outlive the model.
  IndependentCascadeModel(const graph::DirectedGraph& graph,
                          const EdgeProbabilities& probabilities);

  /// Runs one diffusion process from the given initially infected nodes.
  /// Sources must be distinct and in range. `max_rounds` bounds the number
  /// of rounds (0 = unbounded; the process always terminates because each
  /// edge fires at most once).
  StatusOr<Cascade> Run(const std::vector<graph::NodeId>& sources, Rng& rng,
                        uint32_t max_rounds = 0) const;

  /// Statuses-only fast path: same infection decisions and the exact same
  /// RNG consumption order as Run, but records only the final 0/1 flags
  /// into `infected` (num_nodes bytes, all zero on entry — e.g. a fresh
  /// StatusMatrix row) and keeps all working state in `scratch` so warm
  /// repeated calls allocate nothing. Byte-identical to
  /// Run(...).FinalStatuses() by construction.
  Status RunStatusesOnly(const std::vector<graph::NodeId>& sources, Rng& rng,
                         uint32_t max_rounds, uint8_t* infected,
                         SimScratch& scratch) const;

 private:
  const graph::DirectedGraph& graph_;
  const EdgeProbabilities& probabilities_;
};

}  // namespace tends::diffusion

#endif  // TENDS_DIFFUSION_IC_MODEL_H_
