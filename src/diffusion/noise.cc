#include "diffusion/noise.h"

#include "common/stringutil.h"

namespace tends::diffusion {

StatusOr<StatusMatrix> ApplyStatusNoise(const StatusMatrix& statuses,
                                        const StatusNoiseOptions& options,
                                        Rng& rng) {
  // Negated form so NaN (every comparison false) is rejected too.
  if (!(options.miss_probability >= 0.0 && options.miss_probability <= 1.0)) {
    return Status::InvalidArgument(
        StrFormat("miss_probability must be in [0,1], got %g",
                  options.miss_probability));
  }
  if (!(options.false_alarm_probability >= 0.0 &&
        options.false_alarm_probability <= 1.0)) {
    return Status::InvalidArgument(
        StrFormat("false_alarm_probability must be in [0,1], got %g",
                  options.false_alarm_probability));
  }
  StatusMatrix noisy(statuses.num_processes(), statuses.num_nodes());
  for (uint32_t p = 0; p < statuses.num_processes(); ++p) {
    for (uint32_t v = 0; v < statuses.num_nodes(); ++v) {
      uint8_t observed = statuses.Get(p, v);
      if (observed == 1) {
        if (rng.NextBernoulli(options.miss_probability)) observed = 0;
      } else {
        if (rng.NextBernoulli(options.false_alarm_probability)) observed = 1;
      }
      noisy.Set(p, v, observed);
    }
  }
  return noisy;
}

}  // namespace tends::diffusion
