#ifndef TENDS_DIFFUSION_PROPAGATION_H_
#define TENDS_DIFFUSION_PROPAGATION_H_

#include <utility>
#include <vector>

#include "common/random.h"
#include "common/statusor.h"
#include "graph/graph.h"

namespace tends::diffusion {

/// Per-edge propagation probabilities (transmission rates) for a fixed
/// graph, keyed by DirectedGraph::EdgeIndex. Values live in (0, 1].
class EdgeProbabilities {
 public:
  EdgeProbabilities() = default;

  /// All edges share `value`.
  static EdgeProbabilities Uniform(const graph::DirectedGraph& graph,
                                   double value);

  /// Explicit per-edge values, aligned with DirectedGraph::EdgeIndex order
  /// (i.e. OutNeighbors traversal). Errors unless values.size() equals the
  /// edge count and every value lies in (0, 1].
  static StatusOr<EdgeProbabilities> FromValues(
      const graph::DirectedGraph& graph, std::vector<double> values);

  /// The paper's setup (§V-A): each edge's probability is drawn once from
  /// N(mean, stddev^2) and clamped to [min_prob, max_prob], so that >95% of
  /// probabilities fall within mean ± 2*stddev.
  static EdgeProbabilities Gaussian(const graph::DirectedGraph& graph,
                                    double mean, double stddev, Rng& rng,
                                    double min_prob = 0.01,
                                    double max_prob = 0.99);

  /// Probability of edge (u -> v); requires the edge to exist.
  double Get(const graph::DirectedGraph& graph, graph::NodeId u,
             graph::NodeId v) const;

  /// Probability by edge ordinal (aligned with OutNeighbors traversal).
  double GetByIndex(uint64_t edge_index) const { return values_[edge_index]; }

  size_t size() const { return values_.size(); }
  const std::vector<double>& values() const { return values_; }

 private:
  explicit EdgeProbabilities(std::vector<double> values)
      : values_(std::move(values)) {}

  std::vector<double> values_;
};

}  // namespace tends::diffusion

#endif  // TENDS_DIFFUSION_PROPAGATION_H_
