#ifndef TENDS_DIFFUSION_SIM_SCRATCH_H_
#define TENDS_DIFFUSION_SIM_SCRATCH_H_

#include <vector>

#include "graph/graph.h"

namespace tends::diffusion {

/// Reusable working buffers for the statuses-only simulation fast path
/// (the RunStatusesOnly methods of the diffusion models). The full-record
/// Run methods allocate infection_time/infector vectors per process; the
/// fast path keeps its frontier queues — and the LT model its
/// pressure/threshold arrays — here instead, so a warm scratch makes
/// repeated processes allocation-free.
///
/// Every run clobbers the buffers: use one scratch per thread.
struct SimScratch {
  std::vector<graph::NodeId> frontier;
  std::vector<graph::NodeId> next;
  /// LT only: weight-sum of infected in-neighbors per node.
  std::vector<double> pressure;
  /// LT only: per-node activation threshold of the current process.
  std::vector<double> threshold;
};

}  // namespace tends::diffusion

#endif  // TENDS_DIFFUSION_SIM_SCRATCH_H_
