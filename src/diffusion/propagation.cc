#include "diffusion/propagation.h"

#include <algorithm>

#include "common/logging.h"

namespace tends::diffusion {

EdgeProbabilities EdgeProbabilities::Uniform(const graph::DirectedGraph& graph,
                                             double value) {
  return EdgeProbabilities(std::vector<double>(graph.num_edges(), value));
}

StatusOr<EdgeProbabilities> EdgeProbabilities::FromValues(
    const graph::DirectedGraph& graph, std::vector<double> values) {
  if (values.size() != graph.num_edges()) {
    return Status::InvalidArgument(
        "value count does not match graph edge count");
  }
  for (double v : values) {
    if (!(v > 0.0 && v <= 1.0)) {
      return Status::InvalidArgument(
          "edge probabilities must lie in (0, 1]");
    }
  }
  return EdgeProbabilities(std::move(values));
}

EdgeProbabilities EdgeProbabilities::Gaussian(const graph::DirectedGraph& graph,
                                              double mean, double stddev,
                                              Rng& rng, double min_prob,
                                              double max_prob) {
  std::vector<double> values(graph.num_edges());
  for (double& v : values) {
    v = std::clamp(rng.NextGaussian(mean, stddev), min_prob, max_prob);
  }
  return EdgeProbabilities(std::move(values));
}

double EdgeProbabilities::Get(const graph::DirectedGraph& graph,
                              graph::NodeId u, graph::NodeId v) const {
  uint64_t index = graph.EdgeIndex(u, v);
  TENDS_CHECK(index != graph::DirectedGraph::kInvalidEdgeIndex)
      << "no edge (" << u << "," << v << ")";
  return values_[index];
}

}  // namespace tends::diffusion
