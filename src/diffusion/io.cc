#include "diffusion/io.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/stringutil.h"

namespace tends::diffusion {

namespace {

constexpr char kObservationsHeader[] = "# tends-observations v1";
constexpr char kStatusesHeader[] = "# tends-statuses v1";

Status OpenError(const std::string& path) {
  return Status::IoError("cannot open: " + path);
}

struct Dims {
  uint32_t processes = 0;
  uint32_t nodes = 0;
};

bool ParseDims(std::string_view line, Dims* dims) {
  auto fields = SplitWhitespace(line);
  if (fields.size() != 4 || fields[0] != "processes" || fields[2] != "nodes") {
    return false;
  }
  auto processes = ParseUint32(fields[1]);
  auto nodes = ParseUint32(fields[3]);
  if (!processes.ok() || !nodes.ok()) return false;
  dims->processes = *processes;
  dims->nodes = *nodes;
  return true;
}

/// Reads "<header>\nprocesses <p> nodes <n>". Strict mode requires both
/// lines to be exact. Permissive mode records a damaged header and keeps
/// scanning for a usable dimensions line (the header may have been
/// replaced by it outright); without one nothing is recoverable, so even
/// permissive reads fail.
StatusOr<Dims> ReadPreamble(LineReader& reader, const char* header,
                            const IoReadOptions& options,
                            CorruptionReport* report) {
  const bool strict = options.mode == IoMode::kStrict;
  std::string line;
  if (!reader.Next(line)) {
    return Status::Corruption(StrFormat("line 1: missing '%s' header", header));
  }
  Dims dims;
  if (StripWhitespace(line) != header) {
    if (strict) {
      return Status::Corruption(StrFormat(
          "line %llu: expected header '%s', got '%s'",
          static_cast<unsigned long long>(reader.line_number()), header,
          line.c_str()));
    }
    if (report) {
      report->Record(CorruptionKind::kBadStructure, reader.line_number(),
                     "bad or missing header: '" + line + "'");
    }
    if (ParseDims(line, &dims)) return dims;
  }
  while (reader.Next(line)) {
    if (ParseDims(line, &dims)) return dims;
    const std::string message = StrFormat(
        "line %llu: bad dimensions line: '%s'",
        static_cast<unsigned long long>(reader.line_number()), line.c_str());
    if (strict) return Status::Corruption(message);
    if (report) {
      report->Record(CorruptionKind::kBadStructure, reader.line_number(),
                     message);
    }
  }
  return Status::Corruption(
      "no usable dimensions line before end of stream; nothing recoverable");
}

}  // namespace

Status WriteObservations(const DiffusionObservations& observations,
                         std::ostream& out) {
  out << kObservationsHeader << '\n';
  out << "processes " << observations.cascades.size() << " nodes "
      << observations.num_nodes() << '\n';
  for (size_t p = 0; p < observations.cascades.size(); ++p) {
    const Cascade& cascade = observations.cascades[p];
    out << "process " << p << '\n';
    out << "sources";
    for (graph::NodeId s : cascade.sources) out << ' ' << s;
    out << '\n';
    out << "times";
    for (int32_t t : cascade.infection_time) out << ' ' << t;
    out << '\n';
  }
  if (!out) return Status::IoError("observations write failed");
  return Status::OK();
}

Status WriteObservationsFile(const DiffusionObservations& observations,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) return OpenError(path);
  return WriteObservations(observations, out);
}

StatusOr<DiffusionObservations> ReadObservations(std::istream& in,
                                                 const IoReadOptions& options,
                                                 CorruptionReport* report) {
  const bool strict = options.mode == IoMode::kStrict;
  LineReader reader(in);
  TENDS_ASSIGN_OR_RETURN(
      Dims dims, ReadPreamble(reader, kObservationsHeader, options, report));

  DiffusionObservations observations;
  observations.cascades.reserve(dims.processes);
  std::string line;
  // Set when a block was dropped mid-way and `line` already holds the next
  // unconsumed line (permissive resync).
  bool have_line = false;

  // Drops the current block and scans forward to the next "process" marker.
  // Only reachable in permissive mode; strict returns before calling it.
  auto drop_block = [&](CorruptionKind kind, uint64_t line_number,
                        const std::string& message) {
    if (report) {
      report->Record(kind, line_number, message);
      report->AddSkippedRecord();
    }
    while (reader.Next(line)) {
      auto fields = SplitWhitespace(line);
      if (fields.size() == 2 && fields[0] == "process") {
        have_line = true;
        return;
      }
    }
  };

  while (observations.cascades.size() < dims.processes) {
    if (!have_line && !reader.Next(line)) {
      const std::string message = StrFormat(
          "stream ended after %zu of %u process blocks",
          observations.cascades.size(), dims.processes);
      if (strict) return Status::Corruption(message);
      if (report) report->Record(CorruptionKind::kTruncation, 0, message);
      break;
    }
    have_line = false;

    auto marker = SplitWhitespace(line);
    if (marker.size() != 2 || marker[0] != "process") {
      const std::string message = StrFormat(
          "line %llu: expected 'process <i>', got '%s'",
          static_cast<unsigned long long>(reader.line_number()), line.c_str());
      if (strict) return Status::Corruption(message);
      if (report) {
        report->Record(CorruptionKind::kBadStructure, reader.line_number(),
                       message);
      }
      continue;  // scan on, line by line, for the next block marker
    }
    const uint64_t block_line = reader.line_number();

    Cascade cascade;
    if (!reader.Next(line)) {
      const std::string message =
          StrFormat("block at line %llu: stream ended before sources line",
                    static_cast<unsigned long long>(block_line));
      if (strict) return Status::Corruption(message);
      if (report) {
        report->Record(CorruptionKind::kTruncation, 0, message);
        report->AddSkippedRecord();
      }
      break;
    }
    auto sources = SplitWhitespace(line);
    if (sources.empty() || sources[0] != "sources") {
      const std::string message = StrFormat(
          "line %llu: expected 'sources ...', got '%s'",
          static_cast<unsigned long long>(reader.line_number()), line.c_str());
      if (strict) return Status::Corruption(message);
      drop_block(CorruptionKind::kBadStructure, reader.line_number(), message);
      continue;
    }
    bool block_ok = true;
    for (size_t f = 1; f < sources.size() && block_ok; ++f) {
      auto parsed = ParseUint32(sources[f]);
      if (!parsed.ok()) {
        const std::string message =
            StrFormat("line %llu: bad source token '%s'",
                      static_cast<unsigned long long>(reader.line_number()),
                      std::string(sources[f]).c_str());
        if (strict) return Status::Corruption(message);
        drop_block(CorruptionKind::kBadToken, reader.line_number(), message);
        block_ok = false;
      } else if (*parsed >= dims.nodes) {
        const std::string message =
            StrFormat("line %llu: source %u out of range (nodes: %u)",
                      static_cast<unsigned long long>(reader.line_number()),
                      *parsed, dims.nodes);
        if (strict) return Status::Corruption(message);
        drop_block(CorruptionKind::kOutOfRange, reader.line_number(), message);
        block_ok = false;
      } else {
        cascade.sources.push_back(*parsed);
      }
    }
    if (!block_ok) continue;

    if (!reader.Next(line)) {
      const std::string message =
          StrFormat("block at line %llu: stream ended before times line",
                    static_cast<unsigned long long>(block_line));
      if (strict) return Status::Corruption(message);
      if (report) {
        report->Record(CorruptionKind::kTruncation, 0, message);
        report->AddSkippedRecord();
      }
      break;
    }
    auto times = SplitWhitespace(line);
    if (times.empty() || times[0] != "times") {
      const std::string message = StrFormat(
          "line %llu: expected 'times ...', got '%s'",
          static_cast<unsigned long long>(reader.line_number()), line.c_str());
      if (strict) return Status::Corruption(message);
      drop_block(CorruptionKind::kBadStructure, reader.line_number(), message);
      continue;
    }
    if (times.size() != static_cast<size_t>(dims.nodes) + 1) {
      const std::string message =
          StrFormat("line %llu: expected %u times, got %zu",
                    static_cast<unsigned long long>(reader.line_number()),
                    dims.nodes, times.size() - 1);
      if (strict) return Status::Corruption(message);
      drop_block(CorruptionKind::kWrongWidth, reader.line_number(), message);
      continue;
    }
    cascade.infection_time.reserve(dims.nodes);
    for (size_t f = 1; f < times.size() && block_ok; ++f) {
      auto parsed = ParseInt64(times[f]);
      if (!parsed.ok()) {
        const std::string message =
            StrFormat("line %llu: bad time token '%s'",
                      static_cast<unsigned long long>(reader.line_number()),
                      std::string(times[f]).c_str());
        if (strict) return Status::Corruption(message);
        drop_block(CorruptionKind::kBadToken, reader.line_number(), message);
        block_ok = false;
      } else if (*parsed < -1 || *parsed > INT32_MAX) {
        const std::string message =
            StrFormat("line %llu: infection time out of range: '%s'",
                      static_cast<unsigned long long>(reader.line_number()),
                      std::string(times[f]).c_str());
        if (strict) return Status::Corruption(message);
        drop_block(CorruptionKind::kOutOfRange, reader.line_number(), message);
        block_ok = false;
      } else {
        cascade.infection_time.push_back(static_cast<int32_t>(*parsed));
      }
    }
    if (!block_ok) continue;
    // Consistency: every source must have time 0.
    for (graph::NodeId s : cascade.sources) {
      if (cascade.infection_time[s] != 0) {
        const std::string message =
            StrFormat("line %llu: source %u has time %d, expected 0",
                      static_cast<unsigned long long>(reader.line_number()), s,
                      cascade.infection_time[s]);
        if (strict) return Status::Corruption(message);
        drop_block(CorruptionKind::kBadStructure, reader.line_number(),
                   message);
        block_ok = false;
        break;
      }
    }
    if (!block_ok) continue;
    observations.cascades.push_back(std::move(cascade));
  }

  if (observations.cascades.empty() && dims.processes > 0) {
    return Status::Corruption("no process blocks survived the read");
  }
  observations.statuses = StatusesFromCascades(observations.cascades);
  return observations;
}

StatusOr<DiffusionObservations> ReadObservationsFile(
    const std::string& path, const IoReadOptions& options,
    CorruptionReport* report) {
  std::ifstream in(path);
  if (!in) return OpenError(path);
  return ReadObservations(in, options, report);
}

Status WriteStatusMatrix(const StatusMatrix& statuses, std::ostream& out) {
  out << kStatusesHeader << '\n';
  out << "processes " << statuses.num_processes() << " nodes "
      << statuses.num_nodes() << '\n';
  for (uint32_t p = 0; p < statuses.num_processes(); ++p) {
    for (uint32_t v = 0; v < statuses.num_nodes(); ++v) {
      if (v) out << ' ';
      out << static_cast<int>(statuses.Get(p, v));
    }
    out << '\n';
  }
  if (!out) return Status::IoError("status matrix write failed");
  return Status::OK();
}

Status WriteStatusMatrixFile(const StatusMatrix& statuses,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) return OpenError(path);
  return WriteStatusMatrix(statuses, out);
}

StatusOr<StatusMatrix> ReadStatusMatrix(std::istream& in,
                                        const IoReadOptions& options,
                                        CorruptionReport* report) {
  const bool strict = options.mode == IoMode::kStrict;
  LineReader reader(in);
  TENDS_ASSIGN_OR_RETURN(
      Dims dims, ReadPreamble(reader, kStatusesHeader, options, report));

  std::vector<std::vector<uint8_t>> rows;
  rows.reserve(dims.processes);
  std::string line;
  while (rows.size() < dims.processes) {
    if (!reader.Next(line)) {
      const std::string message =
          StrFormat("stream ended after %zu of %u status rows", rows.size(),
                    dims.processes);
      if (strict) return Status::Corruption(message);
      if (report) report->Record(CorruptionKind::kTruncation, 0, message);
      break;
    }
    auto cells = SplitWhitespace(line);
    if (cells.size() != dims.nodes) {
      const std::string message =
          StrFormat("line %llu: expected %u statuses, got %zu",
                    static_cast<unsigned long long>(reader.line_number()),
                    dims.nodes, cells.size());
      if (strict) return Status::Corruption(message);
      if (report) {
        report->Record(CorruptionKind::kWrongWidth, reader.line_number(),
                       message);
        report->AddSkippedRecord();
      }
      continue;
    }
    std::vector<uint8_t> row(dims.nodes);
    bool row_ok = true;
    for (uint32_t v = 0; v < dims.nodes; ++v) {
      if (cells[v] == "0") {
        row[v] = 0;
      } else if (cells[v] == "1") {
        row[v] = 1;
      } else {
        const std::string message =
            StrFormat("line %llu: statuses must be 0 or 1, got '%s'",
                      static_cast<unsigned long long>(reader.line_number()),
                      std::string(cells[v]).c_str());
        if (strict) return Status::Corruption(message);
        if (report) {
          report->Record(CorruptionKind::kBadToken, reader.line_number(),
                         message);
          report->AddSkippedRecord();
        }
        row_ok = false;
        break;
      }
    }
    if (row_ok) rows.push_back(std::move(row));
  }

  if (rows.empty() && dims.processes > 0) {
    return Status::Corruption("no status rows survived the read");
  }
  StatusMatrix statuses(static_cast<uint32_t>(rows.size()), dims.nodes);
  for (uint32_t p = 0; p < rows.size(); ++p) {
    for (uint32_t v = 0; v < dims.nodes; ++v) {
      statuses.Set(p, v, rows[p][v]);
    }
  }
  return statuses;
}

StatusOr<StatusMatrix> ReadStatusMatrixFile(const std::string& path,
                                            const IoReadOptions& options,
                                            CorruptionReport* report) {
  std::ifstream in(path);
  if (!in) return OpenError(path);
  return ReadStatusMatrix(in, options, report);
}

}  // namespace tends::diffusion
