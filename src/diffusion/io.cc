#include "diffusion/io.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/stringutil.h"

namespace tends::diffusion {

namespace {

constexpr char kObservationsHeader[] = "# tends-observations v1";
constexpr char kStatusesHeader[] = "# tends-statuses v1";

Status OpenError(const std::string& path) {
  return Status::IoError("cannot open: " + path);
}

}  // namespace

Status WriteObservations(const DiffusionObservations& observations,
                         std::ostream& out) {
  out << kObservationsHeader << '\n';
  out << "processes " << observations.cascades.size() << " nodes "
      << observations.num_nodes() << '\n';
  for (size_t p = 0; p < observations.cascades.size(); ++p) {
    const Cascade& cascade = observations.cascades[p];
    out << "process " << p << '\n';
    out << "sources";
    for (graph::NodeId s : cascade.sources) out << ' ' << s;
    out << '\n';
    out << "times";
    for (int32_t t : cascade.infection_time) out << ' ' << t;
    out << '\n';
  }
  if (!out) return Status::IoError("observations write failed");
  return Status::OK();
}

Status WriteObservationsFile(const DiffusionObservations& observations,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) return OpenError(path);
  return WriteObservations(observations, out);
}

StatusOr<DiffusionObservations> ReadObservations(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || StripWhitespace(line) != kObservationsHeader) {
    return Status::Corruption("missing tends-observations header");
  }
  if (!std::getline(in, line)) {
    return Status::Corruption("missing dimensions line");
  }
  auto fields = SplitWhitespace(line);
  if (fields.size() != 4 || fields[0] != "processes" || fields[2] != "nodes") {
    return Status::Corruption("bad dimensions line: " + line);
  }
  auto num_processes = ParseUint32(fields[1]);
  auto num_nodes = ParseUint32(fields[3]);
  if (!num_processes.ok() || !num_nodes.ok()) {
    return Status::Corruption("bad dimensions values: " + line);
  }

  DiffusionObservations observations;
  observations.cascades.reserve(*num_processes);
  for (uint32_t p = 0; p < *num_processes; ++p) {
    if (!std::getline(in, line)) {
      return Status::Corruption(StrFormat("truncated at process %u", p));
    }
    auto header = SplitWhitespace(line);
    if (header.size() != 2 || header[0] != "process") {
      return Status::Corruption("expected 'process <i>': " + line);
    }
    Cascade cascade;
    if (!std::getline(in, line)) {
      return Status::Corruption("missing sources line");
    }
    auto sources = SplitWhitespace(line);
    if (sources.empty() || sources[0] != "sources") {
      return Status::Corruption("expected 'sources ...': " + line);
    }
    for (size_t f = 1; f < sources.size(); ++f) {
      TENDS_ASSIGN_OR_RETURN(uint32_t s, ParseUint32(sources[f]));
      if (s >= *num_nodes) {
        return Status::Corruption(StrFormat("source %u out of range", s));
      }
      cascade.sources.push_back(s);
    }
    if (!std::getline(in, line)) {
      return Status::Corruption("missing times line");
    }
    auto times = SplitWhitespace(line);
    if (times.empty() || times[0] != "times") {
      return Status::Corruption("expected 'times ...': " + line);
    }
    if (times.size() != *num_nodes + 1) {
      return Status::Corruption(
          StrFormat("process %u: expected %u times, got %zu", p, *num_nodes,
                    times.size() - 1));
    }
    cascade.infection_time.reserve(*num_nodes);
    for (size_t f = 1; f < times.size(); ++f) {
      TENDS_ASSIGN_OR_RETURN(int64_t t, ParseInt64(times[f]));
      if (t < -1 || t > INT32_MAX) {
        return Status::Corruption("bad infection time: " + std::string(times[f]));
      }
      cascade.infection_time.push_back(static_cast<int32_t>(t));
    }
    // Consistency: every source must have time 0.
    for (graph::NodeId s : cascade.sources) {
      if (cascade.infection_time[s] != 0) {
        return Status::Corruption(
            StrFormat("process %u: source %u has time %d", p, s,
                      cascade.infection_time[s]));
      }
    }
    observations.cascades.push_back(std::move(cascade));
  }
  observations.statuses = StatusesFromCascades(observations.cascades);
  return observations;
}

StatusOr<DiffusionObservations> ReadObservationsFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return OpenError(path);
  return ReadObservations(in);
}

Status WriteStatusMatrix(const StatusMatrix& statuses, std::ostream& out) {
  out << kStatusesHeader << '\n';
  out << "processes " << statuses.num_processes() << " nodes "
      << statuses.num_nodes() << '\n';
  for (uint32_t p = 0; p < statuses.num_processes(); ++p) {
    for (uint32_t v = 0; v < statuses.num_nodes(); ++v) {
      if (v) out << ' ';
      out << static_cast<int>(statuses.Get(p, v));
    }
    out << '\n';
  }
  if (!out) return Status::IoError("status matrix write failed");
  return Status::OK();
}

Status WriteStatusMatrixFile(const StatusMatrix& statuses,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) return OpenError(path);
  return WriteStatusMatrix(statuses, out);
}

StatusOr<StatusMatrix> ReadStatusMatrix(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || StripWhitespace(line) != kStatusesHeader) {
    return Status::Corruption("missing tends-statuses header");
  }
  if (!std::getline(in, line)) {
    return Status::Corruption("missing dimensions line");
  }
  auto fields = SplitWhitespace(line);
  if (fields.size() != 4 || fields[0] != "processes" || fields[2] != "nodes") {
    return Status::Corruption("bad dimensions line: " + line);
  }
  auto num_processes = ParseUint32(fields[1]);
  auto num_nodes = ParseUint32(fields[3]);
  if (!num_processes.ok() || !num_nodes.ok()) {
    return Status::Corruption("bad dimensions values: " + line);
  }
  StatusMatrix statuses(*num_processes, *num_nodes);
  for (uint32_t p = 0; p < *num_processes; ++p) {
    if (!std::getline(in, line)) {
      return Status::Corruption(StrFormat("truncated at row %u", p));
    }
    auto cells = SplitWhitespace(line);
    if (cells.size() != *num_nodes) {
      return Status::Corruption(
          StrFormat("row %u: expected %u statuses, got %zu", p, *num_nodes,
                    cells.size()));
    }
    for (uint32_t v = 0; v < *num_nodes; ++v) {
      if (cells[v] == "0") {
        statuses.Set(p, v, 0);
      } else if (cells[v] == "1") {
        statuses.Set(p, v, 1);
      } else {
        return Status::Corruption("statuses must be 0 or 1, got '" +
                                  std::string(cells[v]) + "'");
      }
    }
  }
  return statuses;
}

StatusOr<StatusMatrix> ReadStatusMatrixFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return OpenError(path);
  return ReadStatusMatrix(in);
}

}  // namespace tends::diffusion
