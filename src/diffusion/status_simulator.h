#ifndef TENDS_DIFFUSION_STATUS_SIMULATOR_H_
#define TENDS_DIFFUSION_STATUS_SIMULATOR_H_

#include "common/random.h"
#include "common/statusor.h"
#include "diffusion/cascade.h"
#include "diffusion/propagation.h"
#include "diffusion/simulator.h"
#include "graph/graph.h"
#include "inference/counting.h"

namespace tends {
class MetricsRegistry;
}  // namespace tends

namespace tends::diffusion {

/// Output of the statuses-only fast path: the same status matrix Simulate
/// would produce (byte-identical for the same inputs), plus the identical
/// bits already in the bit-packed column-major layout of
/// inference::PackedStatuses, assembled during simulation so status-only
/// consumers skip the O(beta * n) transpose — feed both into
/// inference::InferenceSession's pre-packed constructor.
struct StatusObservations {
  StatusMatrix statuses;
  inference::PackedStatuses packed;
};

/// Statuses-only twin of Simulate: runs the same diffusion processes from
/// the same per-process forked RNG streams, but records only final
/// statuses — no per-process Cascade, no infection_time/infector
/// allocations, and per-thread scratch buffers reused across processes
/// (the models' RunStatusesOnly methods consume randomness in exactly the
/// same order as their Run methods, which is what makes the outputs
/// byte-identical, at any `config.num_threads`).
///
/// Parallelism is over word-aligned blocks of 64 processes so that every
/// 64-bit word of the packed layout is written by exactly one thread.
///
/// `metrics` receives the same `tends.sim.*` names as Simulate plus the
/// `tends.sim.fast_path_runs` counter.
StatusOr<StatusObservations> SimulateStatuses(
    const graph::DirectedGraph& graph, const EdgeProbabilities& probabilities,
    const SimulationConfig& config, Rng& rng,
    MetricsRegistry* metrics = nullptr);

}  // namespace tends::diffusion

#endif  // TENDS_DIFFUSION_STATUS_SIMULATOR_H_
