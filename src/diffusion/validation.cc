#include "diffusion/validation.h"

#include "common/stringutil.h"

namespace tends::diffusion {

Status ValidateStatusMatrix(const StatusMatrix& statuses,
                            bool reject_degenerate_columns) {
  if (statuses.num_nodes() == 0) {
    return Status::InvalidArgument("no nodes in observations");
  }
  if (statuses.num_processes() == 0) {
    return Status::InvalidArgument("no diffusion processes in observations");
  }
  if (reject_degenerate_columns) {
    const uint32_t beta = statuses.num_processes();
    for (uint32_t v = 0; v < statuses.num_nodes(); ++v) {
      const uint32_t infected = statuses.InfectionCount(v);
      if (infected == 0) {
        return Status::InvalidArgument(StrFormat(
            "degenerate status column: node %u is uninfected in all %u "
            "processes (its parents are unidentifiable)",
            v, beta));
      }
      if (infected == beta) {
        return Status::InvalidArgument(StrFormat(
            "degenerate status column: node %u is infected in all %u "
            "processes (its parents are unidentifiable)",
            v, beta));
      }
    }
  }
  return Status::OK();
}

Status ValidateCascades(const std::vector<Cascade>& cascades,
                        uint32_t expected_nodes) {
  if (cascades.empty()) {
    return Status::InvalidArgument("no recorded cascades in observations");
  }
  if (expected_nodes == 0) {
    return Status::InvalidArgument("observations carry no nodes");
  }
  for (size_t c = 0; c < cascades.size(); ++c) {
    const Cascade& cascade = cascades[c];
    if (cascade.infection_time.size() != expected_nodes) {
      return Status::InvalidArgument(
          StrFormat("cascade %zu: ragged row — %zu infection times for %u "
                    "nodes",
                    c, cascade.infection_time.size(), expected_nodes));
    }
    for (graph::NodeId s : cascade.sources) {
      if (s >= expected_nodes) {
        return Status::InvalidArgument(StrFormat(
            "cascade %zu: source %u out of range (n=%u)", c, s,
            expected_nodes));
      }
      if (cascade.infection_time[s] != 0) {
        return Status::InvalidArgument(
            StrFormat("cascade %zu: source %u has infection time %d (sources "
                      "must have time 0)",
                      c, s, cascade.infection_time[s]));
      }
    }
  }
  return Status::OK();
}

}  // namespace tends::diffusion
