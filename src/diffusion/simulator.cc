#include "diffusion/simulator.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"
#include "diffusion/ic_model.h"
#include "diffusion/lt_model.h"

namespace tends::diffusion {

StatusOr<DiffusionObservations> Simulate(const graph::DirectedGraph& graph,
                                         const EdgeProbabilities& probabilities,
                                         const SimulationConfig& config,
                                         Rng& rng, MetricsRegistry* metrics) {
  TENDS_METRICS_STAGE(metrics, "simulate");
  TENDS_TRACE_SPAN(metrics, "simulate");
  const uint32_t n = graph.num_nodes();
  if (n == 0) return Status::InvalidArgument("graph has no nodes");
  if (config.num_processes == 0) {
    return Status::InvalidArgument("num_processes must be > 0");
  }
  if (config.initial_infection_ratio <= 0.0 ||
      config.initial_infection_ratio > 1.0) {
    return Status::InvalidArgument("initial_infection_ratio must be in (0,1]");
  }
  if (probabilities.size() != graph.num_edges()) {
    return Status::InvalidArgument(
        "probabilities not aligned with graph edges");
  }
  const uint32_t num_sources = std::max<uint32_t>(
      1, static_cast<uint32_t>(
             std::lround(config.initial_infection_ratio * n)));

  IndependentCascadeModel ic(graph, probabilities);
  LinearThresholdModel lt(graph, probabilities);

  DiffusionObservations observations;
  observations.cascades.reserve(config.num_processes);
  for (uint32_t p = 0; p < config.num_processes; ++p) {
    Rng process_rng = rng.Fork(p + 1);
    std::vector<graph::NodeId> sources =
        process_rng.SampleWithoutReplacement(n, num_sources);
    StatusOr<Cascade> cascade =
        config.model == DiffusionModel::kIndependentCascade
            ? ic.Run(sources, process_rng, config.max_rounds)
            : lt.Run(sources, process_rng, config.max_rounds);
    if (!cascade.ok()) return cascade.status();
    TENDS_METRIC_RECORD(metrics, "tends.sim.cascade_size",
                        cascade.value().NumInfected());
    observations.cascades.push_back(std::move(cascade).value());
  }
  observations.statuses = StatusesFromCascades(observations.cascades);
  TENDS_METRIC_ADD(metrics, "tends.sim.processes", config.num_processes);
#if TENDS_METRICS_ENABLED
  if (metrics != nullptr) {
    uint64_t infections = 0;
    for (const Cascade& cascade : observations.cascades) {
      infections += cascade.NumInfected();
    }
    metrics->GetCounter("tends.sim.infections").Add(infections);
  }
#endif
  return observations;
}

}  // namespace tends::diffusion
