#include "diffusion/simulator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/metrics.h"
#include "common/parallel.h"
#include "diffusion/ic_model.h"
#include "diffusion/lt_model.h"
#include "diffusion/sir_model.h"

namespace tends::diffusion {

namespace internal {

Status ValidateSimulationInputs(const graph::DirectedGraph& graph,
                                const EdgeProbabilities& probabilities,
                                const SimulationConfig& config) {
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("graph has no nodes");
  }
  if (config.num_processes == 0) {
    return Status::InvalidArgument("num_processes must be > 0");
  }
  if (config.initial_infection_ratio <= 0.0 ||
      config.initial_infection_ratio > 1.0) {
    return Status::InvalidArgument("initial_infection_ratio must be in (0,1]");
  }
  if (probabilities.size() != graph.num_edges()) {
    return Status::InvalidArgument(
        "probabilities not aligned with graph edges");
  }
  if (config.num_threads == 0) {
    return Status::InvalidArgument("num_threads must be > 0");
  }
  if (config.model == DiffusionModel::kSir &&
      (config.sir_recovery_probability <= 0.0 ||
       config.sir_recovery_probability > 1.0)) {
    return Status::InvalidArgument("recovery_probability must be in (0,1]");
  }
  return Status::OK();
}

uint32_t NumSources(const SimulationConfig& config, uint32_t num_nodes) {
  return std::max<uint32_t>(
      1, static_cast<uint32_t>(
             std::lround(config.initial_infection_ratio * num_nodes)));
}

}  // namespace internal

StatusOr<DiffusionObservations> Simulate(const graph::DirectedGraph& graph,
                                         const EdgeProbabilities& probabilities,
                                         const SimulationConfig& config,
                                         Rng& rng, MetricsRegistry* metrics) {
  TENDS_METRICS_STAGE(metrics, "simulate");
  TENDS_TRACE_SPAN(metrics, "simulate");
  TENDS_RETURN_IF_ERROR(
      internal::ValidateSimulationInputs(graph, probabilities, config));
  const uint32_t n = graph.num_nodes();
  const uint32_t num_sources = internal::NumSources(config, n);

  IndependentCascadeModel ic(graph, probabilities);
  LinearThresholdModel lt(graph, probabilities);
  SirModel sir(graph, probabilities,
               {.recovery_probability = config.sir_recovery_probability,
                .max_rounds = config.max_rounds});

  // Each process draws every decision from its own stream forked off the
  // caller's rng, so process p's data does not depend on which thread runs
  // it or on what the other processes did: workers fill pre-sized slots
  // and the result is byte-identical at any num_threads.
  std::vector<Rng> process_rngs;
  process_rngs.reserve(config.num_processes);
  for (uint32_t p = 0; p < config.num_processes; ++p) {
    process_rngs.push_back(rng.Fork(p + 1));
  }

  DiffusionObservations observations;
  observations.cascades.resize(config.num_processes);
  std::vector<Status> failures(config.num_processes);
  ParallelFor(config.num_threads, 0, config.num_processes, [&](uint32_t p) {
    Rng& process_rng = process_rngs[p];
    std::vector<graph::NodeId> sources =
        process_rng.SampleWithoutReplacement(n, num_sources);
    StatusOr<Cascade> cascade = [&]() -> StatusOr<Cascade> {
      switch (config.model) {
        case DiffusionModel::kIndependentCascade:
          return ic.Run(sources, process_rng, config.max_rounds);
        case DiffusionModel::kLinearThreshold:
          return lt.Run(sources, process_rng, config.max_rounds);
        case DiffusionModel::kSir:
          return sir.Run(sources, process_rng);
      }
      return Status::Internal("unhandled diffusion model");
    }();
    if (!cascade.ok()) {
      failures[p] = cascade.status();
      return;
    }
    TENDS_METRIC_RECORD(metrics, "tends.sim.cascade_size",
                        cascade.value().NumInfected());
    observations.cascades[p] = std::move(cascade).value();
  });
  // Lowest failing process wins, matching the sequential error order.
  for (const Status& failure : failures) {
    if (!failure.ok()) return failure;
  }
  observations.statuses = StatusesFromCascades(observations.cascades);
  TENDS_METRIC_ADD(metrics, "tends.sim.processes", config.num_processes);
#if TENDS_METRICS_ENABLED
  if (metrics != nullptr) {
    uint64_t infections = 0;
    for (const Cascade& cascade : observations.cascades) {
      infections += cascade.NumInfected();
    }
    metrics->GetCounter("tends.sim.infections").Add(infections);
  }
#endif
  return observations;
}

}  // namespace tends::diffusion
