#ifndef TENDS_BENCHLIB_PRUNING_SWEEP_H_
#define TENDS_BENCHLIB_PRUNING_SWEEP_H_

#include <string>

#include "common/statusor.h"
#include "graph/graph.h"

namespace tends::benchlib {

/// The Figs. 10-11 harness: runs TENDS on `truth` with the pruning
/// threshold scaled by {0.4, 0.6, 0.8, 1.0, 1.2, 1.6, 2.0} and once with
/// traditional MI replacing infection MI, printing F-score / precision /
/// recall / time per setting. Returns a process exit code.
int RunPruningSweepBench(const std::string& title,
                         const StatusOr<graph::DirectedGraph>& truth_or);

}  // namespace tends::benchlib

#endif  // TENDS_BENCHLIB_PRUNING_SWEEP_H_
