#ifndef TENDS_BENCHLIB_EXPERIMENT_H_
#define TENDS_BENCHLIB_EXPERIMENT_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "common/table.h"
#include "diffusion/simulator.h"
#include "graph/graph.h"
#include "inference/lift.h"
#include "inference/multree.h"
#include "inference/netrate.h"
#include "inference/tends.h"
#include "metrics/evaluation.h"

namespace tends::benchlib {

/// Which of the four paper algorithms an experiment runs.
struct AlgorithmSelection {
  bool tends = true;
  bool netrate = true;
  bool multree = true;
  bool lift = true;
};

/// Full configuration of one experimental setting, mirroring §V-A:
/// beta diffusion processes, alpha * n random sources each, edge
/// probabilities ~ N(mu, stddev^2).
struct ExperimentConfig {
  uint64_t seed = 42;
  uint32_t beta = 150;
  double alpha = 0.15;
  double mu = 0.3;
  double prob_stddev = 0.05;
  diffusion::DiffusionModel model =
      diffusion::DiffusionModel::kIndependentCascade;
  /// kSir only: per-round recovery probability
  /// (SimulationConfig::sir_recovery_probability).
  double sir_recovery = 0.5;
  /// Threads for the simulation stage (SimulationConfig::num_threads);
  /// the simulated data is byte-identical for any value.
  uint32_t sim_threads = 1;
  /// Independent repetitions (distinct seeds); metrics and times are
  /// averaged.
  uint32_t repetitions = 1;
  AlgorithmSelection algorithms;
  inference::TendsOptions tends_options;
  inference::NetRateOptions netrate_options;
  /// Observability sink threaded through the simulator and every algorithm
  /// run (common/metrics.h). Not owned; may be null. Repetitions accumulate
  /// into the same registry.
  MetricsRegistry* metrics = nullptr;
};

/// Simulates the configured diffusion processes on `truth` and runs the
/// selected algorithms (MulTree and LIFT receive the true edge count m;
/// NetRate is scored with the best-threshold sweep, per the paper). Returns
/// one averaged evaluation per selected algorithm, in fixed order
/// (TENDS, NetRate, MulTree, LIFT).
StatusOr<std::vector<metrics::AlgorithmEvaluation>> RunExperiment(
    const graph::DirectedGraph& truth, const ExperimentConfig& config);

/// Builds the standard figure table (columns: setting, algorithm, F-score,
/// precision, recall, time in seconds). `rows` pairs a setting label with
/// the evaluations returned by RunExperiment.
Table MakeFigureTable(
    const std::vector<std::pair<std::string,
                                std::vector<metrics::AlgorithmEvaluation>>>&
        rows);

/// When the TENDS_BENCH_JSON_DIR environment variable names a directory,
/// writes the rows of one bench run as `<dir>/BENCH_<slug(title)>.json`
/// (schema "tends.bench.v1": title, git describe, one record per
/// setting/algorithm pair, each carrying its sampled peak_rss_bytes, plus
/// a file-level "memory" object with the process peak and — when
/// `registry` is non-null — every tends.mem.* artifact byte gauge).
/// Unset variable = no-op; a write failure is reported to stderr but
/// never fails the bench.
void MaybeWriteBenchJson(
    const std::string& title,
    const std::vector<std::pair<std::string,
                                std::vector<metrics::AlgorithmEvaluation>>>&
        rows,
    const MetricsRegistry* registry = nullptr);

/// True when the TENDS_BENCH_FAST environment variable is set (non-empty):
/// benches then shrink repetitions / iteration counts for smoke runs.
bool FastBenchMode();

/// Prints a bench header with the paper reference.
void PrintBenchHeader(const std::string& title, const std::string& reference);

/// The workload parameter a dataset bench sweeps (Figs. 4-9).
enum class SweepParameter {
  kAlpha,  // initial infection ratio
  kMu,     // mean propagation probability
  kBeta,   // number of diffusion processes
};

/// Runs the standard real-world-network sweep bench (Figs. 4-9): for each
/// value of the swept parameter, runs the four algorithms on `truth` and
/// prints the figure table. Returns a process exit code.
int RunDatasetSweepBench(const std::string& title, const std::string& reference,
                         const StatusOr<graph::DirectedGraph>& truth_or,
                         SweepParameter parameter,
                         const std::vector<double>& values,
                         uint32_t repetitions);

}  // namespace tends::benchlib

#endif  // TENDS_BENCHLIB_EXPERIMENT_H_
