#include "benchlib/pruning_sweep.h"

#include <iostream>
#include <utility>
#include <vector>

#include "benchlib/experiment.h"
#include "common/random.h"
#include "common/stringutil.h"
#include "diffusion/propagation.h"
#include "diffusion/simulator.h"
#include "diffusion/status_simulator.h"
#include "inference/session.h"
#include "metrics/evaluation.h"

namespace tends::benchlib {

int RunPruningSweepBench(const std::string& title,
                         const StatusOr<graph::DirectedGraph>& truth_or) {
  PrintBenchHeader(title,
                   "TENDS with pruning threshold in {0.4..2.0}*tau plus a "
                   "traditional-MI variant; beta=150, alpha=0.15, mu=0.3");
  if (!truth_or.ok()) {
    std::cerr << "dataset construction failed: " << truth_or.status() << "\n";
    return 1;
  }
  const graph::DirectedGraph& truth = *truth_or;
  const bool fast = FastBenchMode();
  const uint32_t repetitions = fast ? 1 : 2;

  // All eight settings vary only the pruning threshold or the MI variant, so
  // each repetition fans them through one InferenceSession: the packed
  // statuses and the pairwise count table are computed once and shared.
  std::vector<std::string> labels;
  std::vector<inference::TendsOptions> runs;
  for (double multiplier : {0.4, 0.6, 0.8, 1.0, 1.2, 1.6, 2.0}) {
    inference::TendsOptions options;
    options.tau_multiplier = multiplier;
    labels.push_back(StrFormat("%.1f*tau (IMI)", multiplier));
    runs.push_back(options);
  }
  // Traditional-MI ablation at the auto threshold.
  inference::TendsOptions traditional;
  traditional.mi_variant = inference::MiVariant::kTraditional;
  labels.push_back("1.0*tau (traditional MI)");
  runs.push_back(traditional);

  const ExperimentConfig config;  // the standard §V-A workload parameters
  std::vector<metrics::AlgorithmEvaluation> totals(runs.size());
  for (uint32_t rep = 0; rep < repetitions; ++rep) {
    Rng rng(config.seed + 0x9E37ULL * rep);
    diffusion::EdgeProbabilities probabilities =
        diffusion::EdgeProbabilities::Gaussian(truth, config.mu,
                                               config.prob_stddev, rng);
    diffusion::SimulationConfig sim_config;
    sim_config.num_processes = config.beta;
    sim_config.initial_infection_ratio = config.alpha;
    sim_config.model = config.model;
    // Statuses-only fast path: the sweep never looks at cascades, and the
    // pre-packed output seeds the session's transpose artifact for free.
    StatusOr<diffusion::StatusObservations> observations =
        diffusion::SimulateStatuses(truth, probabilities, sim_config, rng);
    if (!observations.ok()) {
      std::cerr << "simulation failed: " << observations.status() << "\n";
      return 1;
    }

    inference::InferenceSession session(std::move(observations->statuses),
                                        std::move(observations->packed));
    inference::SweepRunner runner(session);
    StatusOr<inference::SweepResult> sweep = runner.Run(runs);
    if (!sweep.ok()) {
      std::cerr << "sweep failed: " << sweep.status() << "\n";
      return 1;
    }
    if (sweep->completed.size() != runs.size()) {
      std::cerr << "sweep stopped early: " << sweep->completed.size() << "/"
                << runs.size() << " runs completed\n";
      return 1;
    }
    for (const inference::SweepRunResult& run : sweep->completed) {
      metrics::AlgorithmEvaluation& total = totals[run.run_index];
      metrics::EdgeMetrics sample = metrics::EvaluateEdges(run.network, truth);
      total.algorithm = "TENDS";
      total.metrics.precision += sample.precision;
      total.metrics.recall += sample.recall;
      total.metrics.f_score += sample.f_score;
      total.metrics.true_positives += sample.true_positives;
      total.metrics.false_positives += sample.false_positives;
      total.metrics.false_negatives += sample.false_negatives;
      total.seconds += run.seconds;
      total.inferred_edges += run.network.num_edges();
    }
  }

  std::vector<std::pair<std::string, std::vector<metrics::AlgorithmEvaluation>>>
      rows;
  for (size_t r = 0; r < runs.size(); ++r) {
    metrics::AlgorithmEvaluation& total = totals[r];
    total.metrics.precision /= repetitions;
    total.metrics.recall /= repetitions;
    total.metrics.f_score /= repetitions;
    total.metrics.true_positives /= repetitions;
    total.metrics.false_positives /= repetitions;
    total.metrics.false_negatives /= repetitions;
    total.seconds /= repetitions;
    total.inferred_edges /= repetitions;
    rows.emplace_back(labels[r],
                      std::vector<metrics::AlgorithmEvaluation>{total});
  }
  MakeFigureTable(rows).PrintText(std::cout);
  MaybeWriteBenchJson(title, rows);
  return 0;
}

}  // namespace tends::benchlib
