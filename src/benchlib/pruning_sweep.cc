#include "benchlib/pruning_sweep.h"

#include <iostream>

#include "benchlib/experiment.h"
#include "common/stringutil.h"

namespace tends::benchlib {

int RunPruningSweepBench(const std::string& title,
                         const StatusOr<graph::DirectedGraph>& truth_or) {
  PrintBenchHeader(title,
                   "TENDS with pruning threshold in {0.4..2.0}*tau plus a "
                   "traditional-MI variant; beta=150, alpha=0.15, mu=0.3");
  if (!truth_or.ok()) {
    std::cerr << "dataset construction failed: " << truth_or.status() << "\n";
    return 1;
  }
  const graph::DirectedGraph& truth = *truth_or;
  const bool fast = FastBenchMode();

  std::vector<std::pair<std::string, std::vector<metrics::AlgorithmEvaluation>>>
      rows;
  auto run = [&](const std::string& label,
                 const inference::TendsOptions& options) -> Status {
    ExperimentConfig config;
    config.repetitions = fast ? 1 : 2;
    config.algorithms = {.tends = true,
                         .netrate = false,
                         .multree = false,
                         .lift = false};
    config.tends_options = options;
    TENDS_ASSIGN_OR_RETURN(std::vector<metrics::AlgorithmEvaluation> result,
                           RunExperiment(truth, config));
    rows.emplace_back(label, std::move(result));
    return Status::OK();
  };

  for (double multiplier : {0.4, 0.6, 0.8, 1.0, 1.2, 1.6, 2.0}) {
    inference::TendsOptions options;
    options.tau_multiplier = multiplier;
    Status status = run(StrFormat("%.1f*tau (IMI)", multiplier), options);
    if (!status.ok()) {
      std::cerr << "experiment failed: " << status << "\n";
      return 1;
    }
  }
  // Traditional-MI ablation at the auto threshold.
  inference::TendsOptions traditional;
  traditional.use_traditional_mi = true;
  Status status = run("1.0*tau (traditional MI)", traditional);
  if (!status.ok()) {
    std::cerr << "experiment failed: " << status << "\n";
    return 1;
  }
  MakeFigureTable(rows).PrintText(std::cout);
  MaybeWriteBenchJson(title, rows);
  return 0;
}

}  // namespace tends::benchlib
