#include "benchlib/experiment.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "common/json.h"
#include "common/memory_stats.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/stringutil.h"
#include "diffusion/propagation.h"

namespace tends::benchlib {

namespace {

void Accumulate(metrics::AlgorithmEvaluation& total,
                const metrics::AlgorithmEvaluation& sample) {
  total.algorithm = sample.algorithm;
  total.metrics.precision += sample.metrics.precision;
  total.metrics.recall += sample.metrics.recall;
  total.metrics.f_score += sample.metrics.f_score;
  total.metrics.true_positives += sample.metrics.true_positives;
  total.metrics.false_positives += sample.metrics.false_positives;
  total.metrics.false_negatives += sample.metrics.false_negatives;
  total.seconds += sample.seconds;
  total.inferred_edges += sample.inferred_edges;
  // Peak RSS is a high-water mark, so the max (not the mean) is the honest
  // aggregate across repetitions.
  total.peak_rss_bytes = std::max(total.peak_rss_bytes, sample.peak_rss_bytes);
}

void Average(metrics::AlgorithmEvaluation& total, uint32_t reps) {
  total.metrics.precision /= reps;
  total.metrics.recall /= reps;
  total.metrics.f_score /= reps;
  total.metrics.true_positives /= reps;
  total.metrics.false_positives /= reps;
  total.metrics.false_negatives /= reps;
  total.seconds /= reps;
  total.inferred_edges /= reps;
}

}  // namespace

StatusOr<std::vector<metrics::AlgorithmEvaluation>> RunExperiment(
    const graph::DirectedGraph& truth, const ExperimentConfig& config) {
  if (config.repetitions == 0) {
    return Status::InvalidArgument("repetitions must be > 0");
  }
  std::vector<metrics::AlgorithmEvaluation> totals;
  for (uint32_t rep = 0; rep < config.repetitions; ++rep) {
    Rng rng(config.seed + 0x9E37ULL * rep);
    diffusion::EdgeProbabilities probabilities =
        diffusion::EdgeProbabilities::Gaussian(truth, config.mu,
                                               config.prob_stddev, rng);
    diffusion::SimulationConfig sim_config;
    sim_config.num_processes = config.beta;
    sim_config.initial_infection_ratio = config.alpha;
    sim_config.model = config.model;
    sim_config.sir_recovery_probability = config.sir_recovery;
    sim_config.num_threads = config.sim_threads;
    TENDS_ASSIGN_OR_RETURN(
        diffusion::DiffusionObservations observations,
        diffusion::Simulate(truth, probabilities, sim_config, rng,
                            config.metrics));

    RunContext context;
    context.metrics = config.metrics;
    std::vector<metrics::AlgorithmEvaluation> evaluations;
    if (config.algorithms.tends) {
      inference::Tends tends(config.tends_options);
      TENDS_ASSIGN_OR_RETURN(
          metrics::AlgorithmEvaluation evaluation,
          metrics::RunAndEvaluate(tends, observations, truth,
                                  /*sweep_threshold=*/false, context));
      evaluations.push_back(evaluation);
    }
    if (config.algorithms.netrate) {
      inference::NetRate netrate(config.netrate_options);
      TENDS_ASSIGN_OR_RETURN(
          metrics::AlgorithmEvaluation evaluation,
          metrics::RunAndEvaluate(netrate, observations, truth,
                                  /*sweep_threshold=*/true, context));
      evaluations.push_back(evaluation);
    }
    if (config.algorithms.multree) {
      inference::MulTreeOptions options;
      options.num_edges = truth.num_edges();
      inference::MulTree multree(options);
      TENDS_ASSIGN_OR_RETURN(
          metrics::AlgorithmEvaluation evaluation,
          metrics::RunAndEvaluate(multree, observations, truth,
                                  /*sweep_threshold=*/false, context));
      evaluations.push_back(evaluation);
    }
    if (config.algorithms.lift) {
      inference::LiftOptions options;
      options.num_edges = truth.num_edges();
      inference::Lift lift(options);
      TENDS_ASSIGN_OR_RETURN(
          metrics::AlgorithmEvaluation evaluation,
          metrics::RunAndEvaluate(lift, observations, truth,
                                  /*sweep_threshold=*/false, context));
      evaluations.push_back(evaluation);
    }

    if (rep == 0) {
      totals = std::move(evaluations);
    } else {
      for (size_t a = 0; a < totals.size(); ++a) {
        Accumulate(totals[a], evaluations[a]);
      }
    }
  }
  if (config.repetitions > 1) {
    for (auto& total : totals) Average(total, config.repetitions);
  }
  return totals;
}

Table MakeFigureTable(
    const std::vector<std::pair<std::string,
                                std::vector<metrics::AlgorithmEvaluation>>>&
        rows) {
  Table table({"setting", "algorithm", "f_score", "precision", "recall",
               "time_s", "edges"});
  for (const auto& [setting, evaluations] : rows) {
    for (const auto& evaluation : evaluations) {
      table.AddRow()
          .Add(setting)
          .Add(evaluation.algorithm)
          .AddDouble(evaluation.metrics.f_score)
          .AddDouble(evaluation.metrics.precision)
          .AddDouble(evaluation.metrics.recall)
          .AddDouble(evaluation.seconds)
          .AddInt(static_cast<int64_t>(evaluation.inferred_edges));
    }
  }
  return table;
}

bool FastBenchMode() {
  const char* value = std::getenv("TENDS_BENCH_FAST");
  return value != nullptr && value[0] != '\0';
}

void MaybeWriteBenchJson(
    const std::string& title,
    const std::vector<std::pair<std::string,
                                std::vector<metrics::AlgorithmEvaluation>>>&
        rows,
    const MetricsRegistry* registry) {
  const char* dir = std::getenv("TENDS_BENCH_JSON_DIR");
  if (dir == nullptr || dir[0] == '\0') return;

  std::string slug;
  for (char c : title) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    slug += (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ? c : '_';
  }
  const std::string path = std::string(dir) + "/BENCH_" + slug + ".json";

  JsonWriter writer;
  writer.BeginObject();
  writer.KeyValue("schema", "tends.bench.v1");
  writer.KeyValue("title", title);
  writer.KeyValue("git", BuildGitDescribe());
  writer.Key("rows");
  writer.BeginArray();
  for (const auto& [setting, evaluations] : rows) {
    for (const auto& evaluation : evaluations) {
      writer.BeginObject();
      writer.KeyValue("setting", setting);
      writer.KeyValue("algorithm", evaluation.algorithm);
      writer.KeyValue("f_score", evaluation.metrics.f_score);
      writer.KeyValue("precision", evaluation.metrics.precision);
      writer.KeyValue("recall", evaluation.metrics.recall);
      writer.KeyValue("seconds", evaluation.seconds);
      writer.KeyValue("edges", evaluation.inferred_edges);
      writer.KeyValue("peak_rss_bytes", evaluation.peak_rss_bytes);
      writer.EndObject();
    }
  }
  writer.EndArray();
  writer.Key("memory");
  writer.BeginObject();
  writer.KeyValue("peak_rss_bytes", ReadPeakRssBytes().value_or(0));
  writer.Key("artifacts");
  writer.BeginObject();
  if (registry != nullptr) {
    for (const auto& [name, value] : registry->GaugeValues()) {
      if (name.rfind("tends.mem.", 0) == 0) writer.KeyValue(name, value);
    }
  }
  writer.EndObject();
  writer.EndObject();
  writer.EndObject();

  std::ofstream out(path, std::ios::out | std::ios::trunc);
  out << writer.TakeString() << "\n";
  if (!out.good()) {
    std::cerr << "warning: failed to write " << path << "\n";
  } else {
    std::cout << "wrote " << path << "\n";
  }
}

int RunDatasetSweepBench(const std::string& title, const std::string& reference,
                         const StatusOr<graph::DirectedGraph>& truth_or,
                         SweepParameter parameter,
                         const std::vector<double>& values,
                         uint32_t repetitions) {
  PrintBenchHeader(title, reference);
  if (!truth_or.ok()) {
    std::cerr << "dataset construction failed: " << truth_or.status() << "\n";
    return 1;
  }
  const graph::DirectedGraph& truth = *truth_or;
  const bool fast = FastBenchMode();
  // One registry across the whole sweep: the bench record's memory section
  // reports real per-artifact byte gauges (set at allocation sites; the
  // largest setting wins, matching the bench's high-water footprint).
  MetricsRegistry registry;
  std::vector<std::pair<std::string, std::vector<metrics::AlgorithmEvaluation>>>
      rows;
  for (double value : values) {
    ExperimentConfig config;
    config.metrics = &registry;
    config.repetitions = fast ? 1 : repetitions;
    std::string label;
    switch (parameter) {
      case SweepParameter::kAlpha:
        config.alpha = value;
        config.seed = 42 + static_cast<uint64_t>(value * 1000);
        label = "alpha=" + std::to_string(value).substr(0, 4);
        break;
      case SweepParameter::kMu:
        config.mu = value;
        config.seed = 142 + static_cast<uint64_t>(value * 1000);
        label = "mu=" + std::to_string(value).substr(0, 4);
        break;
      case SweepParameter::kBeta:
        config.beta = static_cast<uint32_t>(value);
        config.seed = 242 + static_cast<uint64_t>(value);
        label = "beta=" + std::to_string(static_cast<int>(value));
        break;
    }
    auto evaluations = RunExperiment(truth, config);
    if (!evaluations.ok()) {
      std::cerr << "experiment failed: " << evaluations.status() << "\n";
      return 1;
    }
    rows.emplace_back(label, std::move(evaluations).value());
  }
  MakeFigureTable(rows).PrintText(std::cout);
  MaybeWriteBenchJson(title, rows, &registry);
  return 0;
}

void PrintBenchHeader(const std::string& title, const std::string& reference) {
  std::cout << "==== " << title << " ====\n"
            << "Reproduces: " << reference << "\n"
            << "(Statistical Estimation of Diffusion Network Topologies, "
               "ICDE 2020)\n\n";
}

}  // namespace tends::benchlib
